"""Region/cluster/client behaviour: routing, DML primitives, scans,
compaction, recovery, size accounting, and cost charging."""

import pytest

from repro.config import ClusterConfig
from repro.errors import (
    RegionRetriesExhaustedError,
    RegionUnavailableError,
    ServerRecoveryError,
    TableExistsError,
    TableNotFoundError,
)
from repro.hbase import (
    Delete,
    Get,
    HBaseClient,
    HBaseCluster,
    Increment,
    Put,
    Scan,
)
from repro.hbase.filters import AndFilter, ColumnValueFilter, PrefixFilter
from repro.sim.clock import Simulation

CF = b"cf"


def put(table, key, **cols):
    p = Put(key)
    for q, v in cols.items():
        p.add(CF, q.encode(), v)
    table.put(p)


@pytest.fixture
def table(client):
    return client.create_table("t", families=(CF,), split_keys=[b"m"])


class TestDdlAndRouting:
    def test_duplicate_create_rejected(self, client, table):
        with pytest.raises(TableExistsError):
            client.create_table("t")

    def test_unknown_table_rejected(self, client):
        with pytest.raises(TableNotFoundError):
            client.cluster.descriptor("nope")

    def test_split_keys_create_regions(self, cluster, client, table):
        desc = cluster.descriptor("t")
        assert len(desc.regions) == 2
        assert desc.region_for(b"a") is not desc.region_for(b"z")

    def test_regions_balanced_round_robin(self, cluster, client):
        for i in range(10):
            client.create_table(f"tbl{i}")
        counts = cluster.region_distribution()
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_drop_table(self, cluster, client, table):
        client.drop_table("t")
        assert not client.has_table("t")
        with pytest.raises(TableNotFoundError):
            cluster.table_size_bytes("t")


class TestDml:
    def test_put_get_roundtrip(self, table):
        put(table, b"k1", a=b"1", b=b"2")
        r = table.get(Get(b"k1"))
        assert r.value(CF, b"a") == b"1"
        assert r.value(CF, b"b") == b"2"

    def test_get_missing_returns_none(self, table):
        assert table.get(Get(b"nope")) is None

    def test_put_overwrites_newest(self, table):
        put(table, b"k", a=b"old")
        put(table, b"k", a=b"new")
        assert table.get(Get(b"k")).value(CF, b"a") == b"new"

    def test_delete_row(self, table):
        put(table, b"k", a=b"1")
        table.delete(Delete(b"k"))
        assert table.get(Get(b"k")) is None

    def test_delete_column_only(self, table):
        put(table, b"k", a=b"1", b=b"2")
        table.delete(Delete(b"k", columns=[(CF, b"a")]))
        r = table.get(Get(b"k"))
        assert r.value(CF, b"a") is None
        assert r.value(CF, b"b") == b"2"

    def test_increment(self, table):
        assert table.increment(Increment(b"ctr", CF, b"n", 5)) == 5
        assert table.increment(Increment(b"ctr", CF, b"n", -2)) == 3

    def test_check_and_put_success_and_failure(self, table):
        p = Put(b"lk")
        p.add(CF, b"l", b"\x01")
        assert table.check_and_put(b"lk", CF, b"l", None, p) is True
        assert table.check_and_put(b"lk", CF, b"l", None, p) is False
        assert table.check_and_put(b"lk", CF, b"l", b"\x01", p) is True

    def test_put_batch_single_wal_sync_per_region(self, client, table):
        puts = []
        for i in range(10):
            p = Put(f"a{i}".encode())
            p.add(CF, b"v", b"x")
            puts.append(p)
        cluster = client.cluster
        before = sum(s.wal.total_appends for s in cluster.servers)
        table.put_batch(puts)
        after = sum(s.wal.total_appends for s in cluster.servers)
        assert after - before == 10  # entries logged
        # but only one synchronous group sync charged for the region
        assert cluster.sim.metrics.counters().get("client.rpc", 0) >= 1


class TestScan:
    def test_full_scan_sorted_across_regions(self, table):
        for k in (b"z", b"a", b"m", b"c"):
            put(table, k, v=k)
        assert [r.row for r in table.scan()] == [b"a", b"c", b"m", b"z"]

    def test_range_scan(self, table):
        for k in (b"a", b"b", b"c", b"d"):
            put(table, k, v=k)
        rows = [r.row for r in table.scan(Scan(start_row=b"b", stop_row=b"d"))]
        assert rows == [b"b", b"c"]

    def test_limit_stops_early(self, table):
        for i in range(20):
            put(table, f"k{i:02d}".encode(), v=b"x")
        rows = table.scan_all(Scan(limit=3))
        assert len(rows) == 3

    def test_column_value_filter(self, table):
        put(table, b"k1", v=b"yes")
        put(table, b"k2", v=b"no")
        scan = Scan(filter=ColumnValueFilter(CF, b"v", "=", b"yes"))
        assert [r.row for r in table.scan(scan)] == [b"k1"]

    def test_prefix_filter(self, table):
        put(table, b"aa1", v=b"x")
        put(table, b"ab2", v=b"x")
        scan = Scan(filter=PrefixFilter(b"aa"))
        assert [r.row for r in table.scan(scan)] == [b"aa1"]

    def test_and_filter(self, table):
        put(table, b"k1", a=b"1", b=b"2")
        put(table, b"k2", a=b"1", b=b"9")
        f = AndFilter((ColumnValueFilter(CF, b"a", "=", b"1"),
                       ColumnValueFilter(CF, b"b", "<", b"5")))
        assert [r.row for r in table.scan(Scan(filter=f))] == [b"k1"]

    def test_filtered_rows_still_cost_server_reads(self, client, table):
        for i in range(10):
            put(table, f"k{i}".encode(), v=b"no")
        sim = client.cluster.sim
        before = sum(
            v for k, v in sim.metrics.counters().items() if ".rows_read" in k
        )
        table.scan_all(Scan(filter=ColumnValueFilter(CF, b"v", "=", b"yes")))
        after = sum(
            v for k, v in sim.metrics.counters().items() if ".rows_read" in k
        )
        assert after - before == 10  # all examined despite empty result


class TestFlushCompactionAndSize:
    def test_flush_preserves_reads(self, cluster, client, table):
        put(table, b"k", v=b"1")
        for region in cluster.descriptor("t").regions:
            region.flush()
        assert table.get(Get(b"k")).value(CF, b"v") == b"1"
        put(table, b"k", v=b"2")  # newer write in memstore wins over hfile
        assert table.get(Get(b"k")).value(CF, b"v") == b"2"

    def test_major_compact_reclaims_deletes(self, cluster, client, table):
        put(table, b"k1", v=b"1")
        put(table, b"k2", v=b"2")
        size_before = table.size_bytes()
        table.delete(Delete(b"k1"))
        cluster.major_compact("t")
        assert table.row_count() == 1
        assert table.size_bytes() < size_before

    def test_row_count_ignores_tombstones(self, cluster, table):
        for i in range(5):
            put(table, f"k{i}".encode(), v=b"x")
        table.delete(Delete(b"k0"))
        assert table.row_count() == 4

    def test_auto_flush_threshold(self, sim):
        cluster = HBaseCluster(
            sim, ClusterConfig(hfile_flush_threshold_rows=5)
        )
        client = HBaseClient(cluster)
        t = client.create_table("small")
        for i in range(12):
            put(t, f"k{i:02d}".encode(), v=b"x")
        region = cluster.descriptor("small").regions[0]
        assert len(region.hfiles) >= 2
        assert len(list(t.scan())) == 12


class TestFailureRecovery:
    def test_crash_makes_region_unavailable(self, cluster, client, table):
        put(table, b"a", v=b"1")
        server = cluster.server_for(cluster.descriptor("t").region_for(b"a"))
        server.crash()
        with pytest.raises(RegionUnavailableError):
            table.get(Get(b"a"))

    def test_recovery_replays_wal(self, cluster, client, table):
        put(table, b"a", v=b"1")
        put(table, b"z", v=b"2")
        for server in list(cluster.servers):
            if server.regions:
                server.crash()
        for server in list(cluster.servers):
            if not server.alive:
                cluster.recover_server(server)
        assert table.get(Get(b"a")).value(CF, b"v") == b"1"
        assert table.get(Get(b"z")).value(CF, b"v") == b"2"

    def test_recovery_preserves_hfiles_and_wal_tail(self, cluster, client, table):
        put(table, b"a", v=b"flushed")
        region = cluster.descriptor("t").region_for(b"a")
        server = cluster.server_for(region)
        server.flush_region(region)
        put(table, b"b", v=b"in-wal")
        server.crash()
        cluster.recover_server(server)
        assert table.get(Get(b"a")).value(CF, b"v") == b"flushed"
        assert table.get(Get(b"b")).value(CF, b"v") == b"in-wal"

    def test_recovering_a_live_server_is_a_typed_error(self, cluster, table):
        server = cluster.server_for(cluster.descriptor("t").region_for(b"a"))
        with pytest.raises(ServerRecoveryError):
            cluster.recover_server(server)

    def test_double_recovery_is_a_typed_error(self, cluster, client, table):
        """Recovering twice would replay a WAL whose edits already
        landed (and were flushed) on the regions' new hosts — it must
        fail loudly, not silently re-move regions."""
        put(table, b"a", v=b"1")
        server = cluster.server_for(cluster.descriptor("t").region_for(b"a"))
        server.crash()
        assert cluster.recover_server(server) >= 1
        with pytest.raises(ServerRecoveryError):
            cluster.recover_server(server)
        # the guarded double recovery changed nothing for clients
        assert table.get(Get(b"a")).value(CF, b"v") == b"1"

    def test_restarted_server_rejoins_empty_and_recyclable(
        self, cluster, client, table
    ):
        put(table, b"a", v=b"1")
        server = cluster.server_for(cluster.descriptor("t").region_for(b"a"))
        server.crash()
        cluster.recover_server(server)
        server.restart()
        assert server.alive and not server.regions and not server.recovered
        assert server.wal.pending_count() == 0
        # a full second crash/recover cycle works after the restart
        put(table, b"a", v=b"2")
        victim = cluster.server_for(cluster.descriptor("t").region_for(b"a"))
        victim.crash()
        cluster.recover_server(victim)
        assert table.get(Get(b"a")).value(CF, b"v") == b"2"

    def test_restarting_a_live_server_is_rejected(self, cluster, table):
        with pytest.raises(Exception, match="already alive"):
            cluster.servers[0].restart()

    def test_recovery_with_no_live_server_is_a_typed_error(
        self, cluster, client, table
    ):
        put(table, b"a", v=b"1")
        for server in cluster.servers:
            server.crash()
        victim = next(s for s in cluster.servers if s.regions)
        with pytest.raises(Exception, match="no live region server"):
            cluster.recover_server(victim)


class TestRelocationRetryBudget:
    def test_unresolvable_region_fails_bounded_and_typed(
        self, sim, cluster, client, table
    ):
        """A key range that keeps resolving to an unavailable region
        must surface the typed exhaustion error after a bounded number
        of meta retries — not loop on meta lookups forever."""
        for i in range(4):
            put(table, b"a%d" % i, v=b"x")
        parent = table._locate(b"a0")
        cluster.split_region(parent)  # parent offline, daughters own it
        # pin resolution to the offline parent: the meta table keeps
        # "answering" with a location that never becomes servable
        table._locate = lambda row: parent
        rpc_before = sim.metrics.counters().get("client.rpc", 0)
        with pytest.raises(RegionRetriesExhaustedError):
            table.get(Get(b"a0"))
        paid = sim.metrics.counters()["client.rpc"] - rpc_before
        # every relocation attempt paid its failed RPC + meta lookup
        assert paid == 2 * table.MAX_LOCATION_RETRIES

    def test_exhaustion_error_is_a_region_unavailable_error(self):
        assert issubclass(RegionRetriesExhaustedError, RegionUnavailableError)

    def test_budget_is_configurable_via_cluster_config(self):
        """A non-default ``max_location_retries`` flows from the
        ClusterConfig onto every handle and bounds the meta-retry loop
        at exactly that budget."""
        sim = Simulation(seed=5)
        cluster = HBaseCluster(
            sim, ClusterConfig(num_region_servers=2, max_location_retries=3)
        )
        client = HBaseClient(cluster)
        table = client.create_table("t", families=(CF,), split_keys=[b"m"])
        assert table.MAX_LOCATION_RETRIES == 3
        for i in range(4):
            put(table, b"a%d" % i, v=b"x")
        parent = table._locate(b"a0")
        cluster.split_region(parent)
        table._locate = lambda row: parent
        rpc_before = sim.metrics.counters().get("client.rpc", 0)
        with pytest.raises(RegionRetriesExhaustedError):
            table.get(Get(b"a0"))
        paid = sim.metrics.counters()["client.rpc"] - rpc_before
        assert paid == 2 * 3  # failed RPC + meta lookup per attempt

    def test_put_batch_relocation_is_bounded_too(self, cluster, client, table):
        """The batched write path shares the bounded budget: it must
        not recurse forever (or overflow the stack) when a group's
        region keeps resolving to an unavailable location."""
        for i in range(4):
            put(table, b"a%d" % i, v=b"x")
        parent = table._locate(b"a0")
        cluster.split_region(parent)
        table._locate = lambda row: parent
        p = Put(b"a0")
        p.add(CF, b"v", b"y")
        with pytest.raises(RegionRetriesExhaustedError):
            table.put_batch([p])

    def test_crash_without_successor_fails_fast(self, sim, cluster, client, table):
        """An unrecovered crash does not burn the retry budget: the
        first relocation attempt finds no successor and re-raises."""
        put(table, b"a", v=b"1")
        server = cluster.server_for(cluster.descriptor("t").region_for(b"a"))
        server.crash()
        rpc_before = sim.metrics.counters().get("client.rpc", 0)
        with pytest.raises(RegionUnavailableError):
            table.get(Get(b"a"))
        # one failed op RPC, no meta-retry charges
        assert sim.metrics.counters()["client.rpc"] - rpc_before == 1


class TestRegionLocationCache:
    def test_point_ops_reuse_cached_region(self, cluster, client, table):
        put(table, b"a", v=b"1")
        assert table._cached_region is cluster.descriptor("t").region_for(b"a")
        # a hit must not consult the descriptor at all
        calls = []
        original = table.desc.region_for
        table.desc.region_for = lambda row: calls.append(row) or original(row)
        put(table, b"b", v=b"2")  # same region as b"a" (split at b"m")
        assert calls == []
        table.get(Get(b"z"))  # other region: miss, one meta lookup
        assert calls == [b"z"]
        table.desc.region_for = original

    def test_cache_invalidated_by_recovery(self, cluster, client, table):
        put(table, b"a", v=b"1")
        stale = table._cached_region
        server = cluster.server_for(stale)
        server.crash()
        cluster.recover_server(server)
        put(table, b"a", v=b"2")  # must re-resolve, not use the dead region
        assert table._cached_region is not stale
        assert table.get(Get(b"a")).value(CF, b"v") == b"2"

    def test_descriptor_version_moves_on_layout_change(self, cluster, client, table):
        desc = cluster.descriptor("t")
        v0 = desc.version
        region = desc.region_for(b"a")
        server = cluster.server_for(region)
        server.crash()
        cluster.recover_server(server)
        assert desc.version > v0


class TestCheckAndPutCharging:
    def test_rmw_read_charges_seek_and_transfer(self, sim, client, table):
        put(table, b"lk", l=b"\x01")
        counters = sim.metrics.counters
        seeks_before = sum(
            v for k, v in counters().items() if k.endswith(".seek")
        )
        bytes_before = counters().get("client.bytes", 0)
        p = Put(b"lk")
        p.add(CF, b"l", b"\x02")
        assert table.check_and_put(b"lk", CF, b"l", b"\x01", p) is True
        seeks_after = sum(
            v for k, v in counters().items() if k.endswith(".seek")
        )
        assert seeks_after == seeks_before + 1  # the read half seeks
        assert counters()["client.bytes"] > bytes_before  # compared bytes

    def test_missing_row_charges_no_transfer(self, sim, client, table):
        bytes_before = sim.metrics.counters().get("client.bytes", 0)
        p = Put(b"absent")
        p.add(CF, b"l", b"\x01")
        assert table.check_and_put(b"absent", CF, b"l", None, p) is True
        # the read found nothing, so no result bytes crossed the wire
        # (the successful put itself transfers nothing back)
        assert sim.metrics.counters().get("client.bytes", 0) == bytes_before


class TestCostCharging:
    def test_get_charges_rpc(self, sim, client, table):
        before = sim.clock.now_ms
        table.get(Get(b"missing"))
        assert sim.clock.now_ms > before

    def test_scan_batches_charge_per_batch(self, sim, cluster):
        client = HBaseClient(cluster)
        t = client.create_table("big")
        for i in range(2500):
            put(t, f"{i:06d}".encode(), v=b"x")
        rpc_before = sim.metrics.counters().get("client.rpc", 0)
        t.scan_all()
        rpc_after = sim.metrics.counters()["client.rpc"]
        # 1 open + ceil(2500/1000) batches = 4 RPCs
        assert rpc_after - rpc_before == 4

    def test_virtual_time_scales_with_rows_scanned(self, sim, cluster):
        client = HBaseClient(cluster)
        t = client.create_table("rows")
        for i in range(1000):
            put(t, f"{i:06d}".encode(), v=b"x")
        sw = sim.stopwatch()
        t.scan_all()
        small = sw.stop()
        for i in range(1000, 5000):
            put(t, f"{i:06d}".encode(), v=b"x")
        sw = sim.stopwatch()
        t.scan_all()
        large = sw.stop()
        assert large > small * 2
