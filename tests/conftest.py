"""Shared fixtures: simulated clusters and small populated systems."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig
from repro.hbase.client import HBaseClient
from repro.hbase.cluster import HBaseCluster
from repro.phoenix.ddl import create_baseline_schema
from repro.phoenix.executor import PhoenixConnection
from repro.relational.company import COMPANY_ROOTS, company_schema, company_workload
from repro.sim.clock import Simulation
from repro.synergy.system import SynergySystem


@pytest.fixture
def sim() -> Simulation:
    return Simulation(seed=42)


@pytest.fixture
def cluster(sim: Simulation) -> HBaseCluster:
    return HBaseCluster(sim, ClusterConfig())


@pytest.fixture
def client(cluster: HBaseCluster) -> HBaseClient:
    return HBaseClient(cluster)


def load_company_data(target) -> None:
    """Populate a small, deterministic Company database.

    ``target`` is anything exposing ``load_row`` (SynergySystem) or an
    object with ``insert_row`` (WriteExecutor-like)."""
    add = getattr(target, "load_row", None) or getattr(target, "insert_row")
    for aid in range(1, 6):
        add("Address", {"AID": aid, "Street": f"{aid} Main St",
                        "City": "Nashville", "Zip": "37201"})
    for dno in (1, 2):
        add("Department", {"DNo": dno, "DName": f"Dept{dno}"})
    for eid in range(1, 11):
        add("Employee", {"EID": eid, "EName": f"emp{eid}",
                         "EHome_AID": (eid % 5) + 1, "EOffice_AID": 1,
                         "E_DNo": (eid % 2) + 1})
    for pno in (1, 2, 3):
        add("Project", {"PNo": pno, "PName": f"proj{pno}",
                        "P_DNo": (pno % 2) + 1})
    for eid in range(1, 11):
        for pno in (1, 2, 3):
            if (eid + pno) % 2 == 0:
                add("Works_On", {"WO_EID": eid, "WO_PNo": pno,
                                 "Hours": 10 * pno})
    for eid in (1, 2):
        add("Dependent", {"DP_EID": eid, "DPName": f"dep{eid}",
                          "DPHome_AID": eid + 1})


@pytest.fixture
def company_conn(client: HBaseClient) -> PhoenixConnection:
    """Phoenix over base Company tables (no views), populated."""
    catalog = create_baseline_schema(client, company_schema())
    conn = PhoenixConnection(client, catalog)
    load_company_data(conn.writer)
    conn.analyze()
    return conn


@pytest.fixture
def company_synergy() -> SynergySystem:
    """A fully wired, populated Synergy deployment on the Company schema."""
    system = SynergySystem(company_schema(), company_workload(), COMPANY_ROOTS)
    load_company_data(system)
    system.finish_load()
    return system
