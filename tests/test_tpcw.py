"""TPC-W substrate: generator determinism/cardinalities, workload
parseability, micro-benchmark setup."""

import pytest

from repro.sql.ast import Select
from repro.sql.parser import parse_statement
from repro.tpcw import (
    TPCW_ROOTS,
    MicrobenchDataGenerator,
    TpcwDataGenerator,
    micro_schema,
    micro_workload,
    tpcw_schema,
    tpcw_workload,
)
from repro.tpcw.queries import JOIN_QUERIES
from repro.tpcw.writes import WRITE_STATEMENTS


class TestGenerator:
    def test_scaling_rules_match_paper(self):
        g = TpcwDataGenerator(100, seed=1)
        assert g.num_items == 10 * 100       # NUM_ITEMS = 10 x NUM_CUST
        assert g.num_orders == 10 * 100      # Customer:Orders = 1:10

    def test_determinism(self):
        a = list(TpcwDataGenerator(20, seed=5).all_rows())
        b = list(TpcwDataGenerator(20, seed=5).all_rows())
        assert a == b

    def test_seed_changes_data(self):
        a = list(TpcwDataGenerator(20, seed=5).rows_for("Orders"))
        b = list(TpcwDataGenerator(20, seed=6).rows_for("Orders"))
        assert a != b

    def test_foreign_keys_resolve(self):
        g = TpcwDataGenerator(20, seed=5)
        items = list(g.rows_for("Item"))
        assert all(1 <= r["i_a_id"] <= g.num_authors for r in items)
        lines = list(g.rows_for("Order_line"))
        assert all(1 <= r["ol_i_id"] <= g.num_items for r in lines)
        assert all(1 <= r["ol_o_id"] <= g.num_orders for r in lines)

    def test_topological_load_order(self):
        g = TpcwDataGenerator(20, seed=5)
        order = g.relation_order()
        assert order.index("Author") < order.index("Item")
        assert order.index("Orders") < order.index("Order_line")
        assert order.index("Customer") < order.index("Orders")

    def test_min_scale_enforced(self):
        with pytest.raises(ValueError):
            TpcwDataGenerator(5)

    def test_query_params_valid(self):
        g = TpcwDataGenerator(20, seed=5)
        for qid in JOIN_QUERIES:
            params = g.params_for_query(qid, rep=0)
            assert len(params) >= 1

    def test_w7_w8_share_target_line(self):
        g = TpcwDataGenerator(20, seed=5)
        w7 = g.params_for_write("W7", 3)
        w8 = g.params_for_write("W8", 3)
        assert w7[:2] == w8  # same (cart, item)

    def test_w12_targets_existing_line(self):
        g = TpcwDataGenerator(20, seed=5)
        _, sc_id, i_id = g.params_for_write("W12", 0)
        lines = [
            (r["scl_sc_id"], r["scl_i_id"])
            for r in g.rows_for("Shopping_cart_line")
        ]
        assert (sc_id, i_id) in lines

    def test_insert_reps_do_not_collide(self):
        g = TpcwDataGenerator(20, seed=5)
        ids = {g.params_for_write("W1", rep)[0] for rep in range(10)}
        assert len(ids) == 10
        assert min(ids) > g.num_orders


class TestWorkloadText:
    def test_all_statements_parse(self):
        for sql in list(JOIN_QUERIES.values()) + list(WRITE_STATEMENTS.values()):
            parse_statement(sql)

    def test_workload_assembly(self):
        w = tpcw_workload()
        assert len(w) == 24
        assert len(w.reads()) == 11
        assert len(w.writes()) == 13

    def test_self_join_flags(self):
        for qid in ("Q7", "Q9", "Q11"):
            stmt = parse_statement(JOIN_QUERIES[qid])
            assert isinstance(stmt, Select) and stmt.uses_relation_twice()
        for qid in ("Q1", "Q2", "Q10"):
            assert not parse_statement(JOIN_QUERIES[qid]).uses_relation_twice()

    def test_roots_are_relations(self):
        schema = tpcw_schema()
        for root in TPCW_ROOTS:
            assert schema.has_relation(root)


class TestMicrobench:
    def test_cardinality_chain(self):
        g = MicrobenchDataGenerator(10, seed=1)
        assert g.num_orders == 100
        assert g.num_order_lines == 1000
        lines = list(g.rows_for("Order_line"))
        assert len(lines) == 1000

    def test_micro_schema_and_workload(self):
        schema = micro_schema()
        assert len(schema) == 3
        w = micro_workload()
        assert len(w) == 2

    def test_micro_views_materialize(self):
        from repro.synergy import SynergySystem
        from repro.tpcw.microbench import MICRO_ROOTS

        system = SynergySystem(micro_schema(), micro_workload(), MICRO_ROOTS)
        names = {v.display_name for v in system.views}
        assert names == {"Customer-Orders", "Customer-Orders-Order_line"}
