"""Candidate-views generation (paper Sec. V): schema graph, DAG
reduction, topological order, root assignment, rooted trees — asserted
against the paper's Company walkthrough (Figs. 4 and 5) and the TPC-W
deployment (Sec. IX-D2)."""

import pytest

from repro.errors import ViewSelectionError
from repro.relational.company import COMPANY_ROOTS, company_schema, company_workload
from repro.relational.datatypes import DataType
from repro.relational.schema import ForeignKey, Relation, Schema
from repro.relational.workload import Workload
from repro.synergy.graph import build_schema_graph
from repro.synergy.heuristics import JoinOverlapHeuristic, UniformHeuristic
from repro.synergy.trees import generate_rooted_trees
from repro.synergy.views import candidate_views, candidate_views_for_trees
from repro.tpcw.schema import TPCW_ROOTS, tpcw_schema
from repro.tpcw.workload import tpcw_workload


@pytest.fixture(scope="module")
def company():
    schema = company_schema()
    workload = company_workload()
    graph = build_schema_graph(schema)
    heuristic = JoinOverlapHeuristic(schema, workload)
    trees, assignment = generate_rooted_trees(graph, COMPANY_ROOTS, heuristic)
    return schema, workload, graph, heuristic, trees, assignment


class TestSchemaGraph:
    def test_company_graph_edges(self, company):
        _, _, graph, _, _, _ = company
        assert len(graph.edges) == 9
        # multi-edge between Address and Employee (home + office)
        ae = [e for e in graph.edges
              if (e.parent, e.child) == ("Address", "Employee")]
        assert len(ae) == 2

    def test_dag_removes_office_edge(self, company):
        """Fig. 5(a): the (AID, EOffice_AID) edge is removed because the
        workload never joins on it."""
        schema, _, graph, heuristic, _, _ = company
        dag = graph.to_dag(heuristic)
        ae = [e for e in dag.edges
              if (e.parent, e.child) == ("Address", "Employee")]
        assert len(ae) == 1
        assert ae[0].fk_attrs == ("EHome_AID",)

    def test_topological_order_valid(self, company):
        _, _, graph, heuristic, _, _ = company
        dag = graph.to_dag(heuristic)
        topo = dag.topological_order()
        position = {n: i for i, n in enumerate(topo)}
        for e in dag.edges:
            assert position[e.parent] < position[e.child]

    def test_cycle_detected(self):
        a = Relation("A", [("a", DataType.INT), ("b_ref", DataType.INT)],
                     primary_key=["a"],
                     foreign_keys=[ForeignKey("ab", ("b_ref",), "B")])
        b = Relation("B", [("b", DataType.INT), ("a_ref", DataType.INT)],
                     primary_key=["b"],
                     foreign_keys=[ForeignKey("ba", ("a_ref",), "A")])
        graph = build_schema_graph(Schema([a, b]))
        with pytest.raises(ViewSelectionError):
            graph.to_dag(UniformHeuristic())

    def test_paths_enumeration(self, company):
        _, _, graph, heuristic, _, _ = company
        dag = graph.to_dag(heuristic)
        paths = dag.paths("Address", "Works_On")
        assert len(paths) == 1
        assert [e.child for e in paths[0]] == ["Employee", "Works_On"]


class TestRootAssignment:
    def test_company_assignment_matches_paper(self, company):
        """Fig. 4(b)/5(c): E, WO, DP -> Address; DL, P -> Department."""
        _, _, _, _, _, assignment = company
        assert assignment == {
            "Employee": "Address",
            "Works_On": "Address",
            "Dependent": "Address",
            "Department_Location": "Department",
            "Project": "Department",
        }

    def test_company_trees_match_paper(self, company):
        _, _, _, _, trees, _ = company
        a = trees["Address"]
        assert a.children_of("Address") == ("Employee",)
        assert set(a.children_of("Employee")) == {"Works_On", "Dependent"}
        d = trees["Department"]
        assert set(d.children_of("Department")) == {
            "Department_Location", "Project",
        }

    def test_tie_breaks_toward_first_root(self, company):
        """Employee has weight-1 paths from both Address (W1) and
        Department (W2); the paper assigns it to Address, the root
        listed first in Q_company."""
        _, _, _, _, _, assignment = company
        assert assignment["Employee"] == "Address"

    def test_unknown_root_rejected(self, company):
        schema, workload, graph, heuristic, _, _ = company
        with pytest.raises(ViewSelectionError):
            generate_rooted_trees(graph, ("Nope",), heuristic)

    def test_unreachable_relation_stays_unassigned(self):
        schema = tpcw_schema()
        graph = build_schema_graph(schema)
        heuristic = JoinOverlapHeuristic(schema, tpcw_workload())
        _, assignment = generate_rooted_trees(graph, TPCW_ROOTS, heuristic)
        assert "Shopping_cart" not in assignment

    def test_tpcw_assignment(self):
        schema = tpcw_schema()
        graph = build_schema_graph(schema)
        heuristic = JoinOverlapHeuristic(schema, tpcw_workload())
        trees, assignment = generate_rooted_trees(graph, TPCW_ROOTS, heuristic)
        assert assignment["Item"] == "Author"
        assert assignment["Order_line"] == "Author"  # via the hot Item chain
        assert assignment["Shopping_cart_line"] == "Author"
        assert assignment["Orders"] == "Customer"
        assert assignment["CC_Xacts"] == "Customer"
        assert assignment["Address"] == "Country"
        assert trees["Customer"].children_of("Orders") == ("CC_Xacts",)

    def test_each_relation_in_at_most_one_tree(self):
        """The single-lock guarantee rests on this invariant."""
        schema = tpcw_schema()
        graph = build_schema_graph(schema)
        heuristic = JoinOverlapHeuristic(schema, tpcw_workload())
        trees, _ = generate_rooted_trees(graph, TPCW_ROOTS, heuristic)
        seen: set[str] = set()
        for tree in trees.values():
            for node in tree.non_root_nodes:
                assert node not in seen
                seen.add(node)

    def test_tree_paths_unique(self, company):
        _, _, _, _, trees, _ = company
        tree = trees["Address"]
        path = tree.path_from_root("Works_On")
        assert [e.child for e in path] == ["Employee", "Works_On"]
        sub = tree.path_between("Employee", "Works_On")
        assert len(sub) == 1 and sub[0].child == "Works_On"
        with pytest.raises(ViewSelectionError):
            tree.path_between("Works_On", "Employee")


class TestCandidateViews:
    def test_company_candidates_are_all_tree_paths(self, company):
        _, _, _, _, trees, _ = company
        names = {v.display_name for v in candidate_views_for_trees(trees)}
        assert names == {
            "Address-Employee",
            "Address-Employee-Works_On",
            "Address-Employee-Dependent",
            "Employee-Works_On",
            "Employee-Dependent",
            "Department-Department_Location",
            "Department-Project",
        }

    def test_view_key_is_last_relation_pk(self, company):
        schema, _, _, _, trees, _ = company
        for view in candidate_views(trees["Address"]):
            assert view.key_attrs(schema) == tuple(
                schema.relation(view.last).primary_key
            )

    def test_view_attributes_are_union(self, company):
        schema, _, _, _, trees, _ = company
        view = next(
            v for v in candidate_views(trees["Address"])
            if v.display_name == "Address-Employee"
        )
        attrs = view.attributes(schema)
        assert "Street" in attrs and "EName" in attrs
        assert view.name == "MV_Address__Employee"

    def test_empty_tree_has_no_candidates(self):
        schema = company_schema()
        graph = build_schema_graph(schema)
        heuristic = JoinOverlapHeuristic(schema, Workload())
        trees, _ = generate_rooted_trees(graph, ("Works_On",), heuristic)
        assert candidate_views(trees["Works_On"]) == []
