"""Relational model tests (paper Sec. II-A definitions)."""

import pytest

from repro.errors import SchemaError
from repro.relational.company import company_schema
from repro.relational.datatypes import DataType
from repro.relational.schema import ForeignKey, Index, Relation, Schema
from repro.relational.workload import Workload
from repro.tpcw.schema import tpcw_schema


class TestRelation:
    def test_basic_construction(self):
        r = Relation("R", [("a", DataType.INT), "b"], primary_key=["a"])
        assert r.primary_key == ("a",)
        assert r.attribute("b").dtype is DataType.VARCHAR

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ["a", "a"], primary_key=["a"])

    def test_empty_pk_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ["a"], primary_key=[])

    def test_pk_must_exist(self):
        with pytest.raises(SchemaError):
            Relation("R", ["a"], primary_key=["z"])

    def test_fk_attr_must_exist(self):
        with pytest.raises(SchemaError):
            Relation("R", ["a"], primary_key=["a"],
                     foreign_keys=[ForeignKey("f", ("zz",), "T")])

    def test_duplicate_fk_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation(
                "R", ["a", "b"], primary_key=["a"],
                foreign_keys=[ForeignKey("f", ("b",), "T"),
                              ForeignKey("f", ("a",), "T")],
            )

    def test_equality_by_name(self):
        a = Relation("R", ["a"], primary_key=["a"])
        b = Relation("R", ["a", "b"], primary_key=["a"])
        assert a == b and hash(a) == hash(b)


class TestSchema:
    def test_dangling_fk_rejected(self):
        r = Relation("R", ["a", "b"], primary_key=["a"],
                     foreign_keys=[ForeignKey("f", ("b",), "Missing")])
        with pytest.raises(SchemaError):
            Schema([r])

    def test_fk_arity_must_match_pk(self):
        t = Relation("T", ["x", "y"], primary_key=["x", "y"])
        r = Relation("R", ["a", "b"], primary_key=["a"],
                     foreign_keys=[ForeignKey("f", ("b",), "T")])
        with pytest.raises(SchemaError):
            Schema([t, r])

    def test_duplicate_relation_rejected(self):
        r = Relation("R", ["a"], primary_key=["a"])
        with pytest.raises(SchemaError):
            Schema([r, Relation("R", ["b"], primary_key=["b"])])

    def test_relationships_company(self):
        schema = company_schema()
        rels = schema.relationships()
        pairs = {(p, c, fk.name) for p, c, fk in rels}
        assert ("Address", "Employee", "emp_home_addr") in pairs
        assert ("Address", "Employee", "emp_office_addr") in pairs
        assert ("Department", "Employee", "emp_dept") in pairs
        assert ("Employee", "Works_On", "wo_emp") in pairs
        assert len(rels) == 9  # Fig. 4(a) has 9 FK edges

    def test_index_validation(self):
        schema = company_schema()
        with pytest.raises(SchemaError):
            schema.add_index("Employee", Index("bad", ("nope",)))
        with pytest.raises(SchemaError):
            schema.add_index("Employee", Index("idx_emp_home", ("EID",)))

    def test_indexes_listed(self):
        schema = company_schema()
        names = [x.name for x in schema.indexes("Employee")]
        assert "idx_emp_home" in names and "idx_emp_dept" in names

    def test_tpcw_schema_wellformed(self):
        schema = tpcw_schema()
        assert len(schema) == 10
        assert schema.relation("Order_line").primary_key == ("ol_o_id", "ol_id")
        assert len(schema.relationships()) == 12


class TestWorkload:
    def test_auto_ids(self):
        w = Workload(["SELECT * FROM Country", "SELECT * FROM Item"])
        assert [s.statement_id for s in w] == ["w1", "w2"]

    def test_by_id(self):
        w = Workload()
        w.add("SELECT * FROM Country", statement_id="q")
        assert w.by_id("q").sql.startswith("SELECT")
        with pytest.raises(KeyError):
            w.by_id("missing")

    def test_reads_writes_split(self):
        w = Workload([
            "SELECT * FROM Country",
            "INSERT INTO Country (co_id) VALUES (?)",
            "UPDATE Country SET co_name = ? WHERE co_id = ?",
        ])
        assert len(w.reads()) == 1
        assert len(w.writes()) == 2
