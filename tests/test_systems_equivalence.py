"""Differential cross-system equivalence suite.

The same TPC-W statement sequence is driven through Synergy, MVCC-A,
MVCC-UA and VoltDB, and every query's result set must agree row for row
across systems — first as a single client issuing an interleaved
read/write script, then as a 4-client schedule through the
deterministic cooperative scheduler. The 4-client schedule writes
disjoint key slices per client, so the final database state is
schedule-independent and must converge across systems even though each
system interleaves the clients differently (different virtual
latencies -> different resume orders).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.bench.tpcw_lab import TpcwLab
from repro.errors import UnsupportedStatementError
from repro.sim.scheduler import DeterministicScheduler, run_transaction
from repro.tpcw.queries import JOIN_QUERIES, VOLTDB_UNSUPPORTED
from repro.tpcw.writes import WRITE_STATEMENTS

SCALE = 25
SEED = 7
SYSTEMS = ("Synergy", "MVCC-A", "MVCC-UA", "VoltDB")

#: Identifying columns per query, shared by every system's result shape.
QUERY_KEYS = {
    "Q1": ("ol_o_id", "ol_id", "i_id"),
    "Q2": ("o_id", "c_id"),
    "Q3": ("c_id", "addr_id", "co_id"),
    "Q4": ("i_id", "a_id"),
    "Q5": ("i_id", "a_id"),
    "Q6": ("i_id", "a_id"),
    "Q7": ("o_id", "c_id"),
    "Q8": ("scl_sc_id", "scl_i_id", "i_id"),
    "Q9": ("i_id",),
    "Q10": ("i_id", "SUM(ol.ol_qty)"),
    "Q11": ("ol_i_id",),
}

#: One repetition of the single-client script: the 13 writes in W1..W13
#: order (inserts before the statements that reference them) with the 11
#: queries interleaved so each query runs right after writes it can see.
SCRIPT = (
    ("w", "W1"), ("q", "Q7"), ("w", "W2"), ("w", "W3"), ("q", "Q1"),
    ("w", "W4"), ("w", "W5"), ("q", "Q3"), ("w", "W6"), ("w", "W7"),
    ("q", "Q8"), ("w", "W8"), ("w", "W9"), ("q", "Q6"), ("w", "W10"),
    ("q", "Q4"), ("q", "Q5"), ("w", "W11"), ("w", "W12"), ("q", "Q9"),
    ("w", "W13"), ("q", "Q2"), ("q", "Q10"), ("q", "Q11"),
)


def canonical(qid: str, rows):
    # aggregate column naming differs per view rewrite; compare on i_id
    keys = ("i_id",) if qid == "Q10" else QUERY_KEYS[qid]
    return sorted(tuple(r.get(k) for k in keys) for r in rows)


@pytest.fixture(scope="module")
def lab():
    return TpcwLab(num_customers=SCALE, repetitions=2, seed=SEED)


@pytest.fixture(scope="module")
def systems(lab):
    out = {}
    for name in SYSTEMS:
        system = lab.build_system(name)
        lab.populate(system)
        out[name] = system
    return out


def query_battery(system, lab, reps=(0, 1)):
    """Canonicalized results of every supported query at several
    parameter draws — the row-for-row fingerprint of the DB state."""
    out = {}
    for qid in JOIN_QUERIES:
        if not system.supports(qid):
            continue
        for rep in reps:
            params = lab.generator.params_for_query(qid, rep)
            rows = system.execute(system.statement(qid), params)
            out[(qid, rep)] = canonical(qid, rows)
    return out


def assert_batteries_agree(batteries: dict[str, dict]) -> None:
    reference_name = SYSTEMS[0]
    reference = batteries[reference_name]
    for name, battery in batteries.items():
        for key, rows in battery.items():
            if key not in reference:
                assert name == "VoltDB" and key[0] in VOLTDB_UNSUPPORTED
                continue
            assert rows == reference[key], (
                f"{name} disagrees with {reference_name} on {key}"
            )


class TestSingleClientScript:
    def test_interleaved_script_row_for_row(self, systems, lab):
        """Replay the same read/write script on every system; each
        query's rows must match the reference system's exactly."""
        transcripts = {name: {} for name in SYSTEMS}
        for name, system in systems.items():
            for rep in range(2):
                for kind, sid in SCRIPT:
                    if not system.supports(sid):
                        assert name == "VoltDB" and sid in VOLTDB_UNSUPPORTED
                        continue
                    if kind == "q":
                        params = lab.generator.params_for_query(sid, rep)
                        rows = system.execute(system.statement(sid), params)
                        transcripts[name][(sid, rep)] = canonical(sid, rows)
                    else:
                        params = lab.generator.params_for_write(sid, rep)
                        system.execute(system.statement(sid), params)
        assert_batteries_agree(transcripts)

    def test_post_script_battery_row_for_row(self, systems, lab):
        """After the scripted mutations, a full fresh query battery
        still agrees across systems (catches divergence the in-script
        queries did not observe, e.g. stale view rows)."""
        assert_batteries_agree(
            {name: query_battery(systems[name], lab) for name in SYSTEMS}
        )


def four_client_txns(lab):
    """Per-client transaction lists over DISJOINT key slices: client i
    owns item i+1, customer i+1 and cart i+1, so the final state is
    independent of the interleaving each system happens to produce."""
    per_client = []
    for c in range(4):
        i_id, c_id, sc_id = c + 1, c + 1, c + 1
        txns = []
        for t in range(3):
            stamp = 1000 * (c + 1) + t
            txns.append([
                ("SELECT * FROM Item WHERE i_id = ?", (i_id,)),
                (WRITE_STATEMENTS["W9"], (stamp, i_id)),
            ])
            txns.append([
                (WRITE_STATEMENTS["W13"],
                 (float(stamp), float(stamp) / 2, float(t), c_id)),
            ])
            txns.append([
                (WRITE_STATEMENTS["W11"], (float(stamp), sc_id)),
            ])
        per_client.append(txns)
    return per_client


def run_four_client_schedule(system, per_client):
    scheduler = DeterministicScheduler(system.sim)
    for i, txns in enumerate(per_client):
        session = system.open_session(f"c{i}")

        def program(client, session=session, txns=txns):
            for txn in txns:
                yield from run_transaction(client, session, txn)

        scheduler.add_client(f"c{i}", program)
    return scheduler.run()


@pytest.fixture(scope="module")
def four_client_reports(systems, lab):
    """Run the 4-client schedule once on every system; both schedule
    tests consume this, so each passes when selected in isolation."""
    per_client = four_client_txns(lab)
    return per_client, {
        name: run_four_client_schedule(system, per_client)
        for name, system in systems.items()
    }


class TestFourClientSchedule:
    def test_scheduled_mutations_converge_row_for_row(
        self, systems, lab, four_client_reports
    ):
        """Drive the same 4-client transaction mix through each system's
        scheduler; every client's writes land (disjoint keys -> no lost
        work) and the final query battery agrees row for row."""
        per_client, reports = four_client_reports
        total_txns = sum(len(t) for t in per_client)
        for name, report in reports.items():
            assert report.committed == total_txns, name
            assert report.steps > total_txns  # genuinely interleaved
        assert_batteries_agree(
            {name: query_battery(systems[name], lab) for name in SYSTEMS}
        )

    def test_mutated_rows_identical_across_systems(
        self, systems, four_client_reports
    ):
        """Point-read every row the schedule wrote: the last-writer
        value per key must be identical on all four systems."""
        for c in range(4):
            i_id, c_id, sc_id = c + 1, c + 1, c + 1
            expected_stock = 1000 * (c + 1) + 2  # t == 2 is the last txn
            for name, system in systems.items():
                item = system.execute(
                    "SELECT * FROM Item WHERE i_id = ?", (i_id,)
                )
                assert item[0]["i_stock"] == expected_stock, name
                cust = system.execute(
                    "SELECT * FROM Customer WHERE c_id = ?", (c_id,)
                )
                assert cust[0]["c_balance"] == float(expected_stock), name
                cart = system.execute(
                    "SELECT * FROM Shopping_cart WHERE sc_id = ?", (sc_id,)
                )
                assert cart[0]["sc_time"] == float(expected_stock), name


class TestStreamingEngine:
    """The streaming operator pipeline must be row-equivalent to the
    serial legacy executor even when queries run through the
    deterministic cooperative scheduler at 4 clients."""

    @pytest.fixture(scope="class")
    def engines(self):
        out = {}
        for engine in ("legacy", "streaming"):
            lab = TpcwLab(
                num_customers=SCALE, repetitions=2, seed=SEED,
                query_engine=engine,
            )
            system = lab.build_system("Baseline")
            lab.populate(system)
            out[engine] = (lab, system)
        return out

    def test_streaming_scheduled_rows_equal_legacy_serial(self, engines):
        lab, legacy_system = engines["legacy"]
        serial = {}
        for qid in JOIN_QUERIES:
            params = lab.generator.params_for_query(qid, 0)
            serial[qid] = canonical(
                qid, legacy_system.execute(legacy_system.statement(qid), params)
            )

        s_lab, streaming = engines["streaming"]
        scheduler = DeterministicScheduler(streaming.sim)
        collected: dict[str, list] = {}
        qids = list(JOIN_QUERIES)
        for i in range(4):
            session = streaming.open_session(f"c{i}")
            share = qids[i::4]

            def program(client, session=session, share=share):
                for qid in share:
                    params = s_lab.generator.params_for_query(qid, 0)
                    yield "op"
                    rows = session.execute(streaming.statement(qid), params)
                    collected[qid] = canonical(qid, rows)

            scheduler.add_client(f"c{i}", program)
        report = scheduler.run()
        assert report.steps >= len(qids)
        assert collected == serial


class TestStreamingEarlyClose:
    """LIMIT-abandoned operator trees must release their scanner state:
    in-flight batch charges settle and the region-server serial window
    is released at close time (the PR 4 scan-finally guarantee, driven
    through the streaming cursor)."""

    #: Big enough that Orders (10x customers) spans several operator
    #: batches and several scan-batch charge boundaries — at tiny scales
    #: one 256-row batch swallows a whole table and nothing closes early.
    EARLY_CLOSE_SCALE = 120

    @pytest.fixture(scope="class")
    def baseline(self):
        lab = TpcwLab(
            num_customers=self.EARLY_CLOSE_SCALE, repetitions=1, seed=SEED,
            query_engine="streaming",
        )
        system = lab.build_system("Baseline")
        lab.populate(system)
        return system

    def test_abandoned_cursor_settles_batch_and_releases_window(self, baseline):
        from repro.sim.scheduler import ConcurrencyContext

        conn, sim = baseline.conn, baseline.sim
        ctx = ConcurrencyContext()
        sim.concurrency = ctx
        try:
            # Order_line is bigger than one operator batch, so after a
            # few rows the region scan is still mid-flight
            cursor = conn.stream_query("SELECT ol.ol_o_id FROM Order_line as ol")
            for _ in range(5):
                next(cursor)
            counters = sim.metrics.counters()
            rpc_before = counters["client.rpc"]
            bytes_before = counters.get("client.bytes", 0)
            cursor.close()  # consumer abandons the operator tree
            counters = sim.metrics.counters()
            assert counters["client.rpc"] == rpc_before + 1  # settled batch
            assert counters["client.bytes"] > bytes_before
            # the scan's finally released the server's serial window as
            # of the settlement clock — nothing left holding the region
            assert ctx._serial_busy_until
            assert max(ctx._serial_busy_until.values()) == sim.clock.now_ms
        finally:
            sim.concurrency = None

    def test_limit_closes_scans_before_exhaustion(self, baseline):
        """A satisfied LIMIT closes the whole tree at once: the
        streaming broadcast-shaped join performs strictly fewer scan
        RPCs than the legacy engine, which must finish the full
        build-side scan before emitting its first row."""
        conn, sim = baseline.conn, baseline.sim
        sql = (
            "SELECT o.o_id, o2.o_id FROM Orders as o, Orders as o2 "
            "WHERE o.o_date = o2.o_date LIMIT 10"
        )
        rpc_before = sim.metrics.counters()["client.rpc"]
        rows = conn.execute_query(sql)
        streaming_rpcs = sim.metrics.counters()["client.rpc"] - rpc_before
        assert len(rows) == 10

        conn.configure_engine(engine="legacy")
        rpc_before = sim.metrics.counters()["client.rpc"]
        rows_legacy = conn.execute_query(sql)
        legacy_rpcs = sim.metrics.counters()["client.rpc"] - rpc_before
        conn.configure_engine(engine="streaming")
        assert len(rows_legacy) == 10
        assert streaming_rpcs < legacy_rpcs


class TestSupportsTruthfulProbe:
    """Differential probe of ``supports()``: for every workload
    statement id on every system, a True claim must execute cleanly and
    a False claim must refuse with UnsupportedStatementError — no
    over-claiming (the old base default answered True for everything)
    and no under-claiming."""

    @pytest.fixture(scope="class")
    def probe(self):
        # own small-scale fixtures: the probe EXECUTES every write, so
        # it must not share state with the module-scope systems above
        lab = TpcwLab(num_customers=10, repetitions=1, seed=SEED)
        systems = {}
        for name in (*SYSTEMS, "Baseline"):
            system = lab.build_system(name)
            lab.populate(system)
            systems[name] = system
        return lab, systems

    def test_every_statement_id_on_every_system(self, probe):
        lab, systems = probe
        refused = set()
        for name, system in systems.items():
            for sid in (*JOIN_QUERIES, *WRITE_STATEMENTS):
                params = (
                    lab.generator.params_for_query(sid, 0)
                    if sid in JOIN_QUERIES
                    else lab.generator.params_for_write(sid, 0)
                )
                if system.supports(sid):
                    system.execute(system.statement(sid), params)
                else:
                    refused.add((name, sid))
                    with pytest.raises(UnsupportedStatementError):
                        system.execute(system.statement(sid), params)
        # the only truthful refusals are VoltDB's multi-way joins
        assert refused == {("VoltDB", q) for q in VOLTDB_UNSUPPORTED}

    def test_unknown_statement_id_unsupported_everywhere(self, probe):
        _, systems = probe
        for name, system in systems.items():
            assert not system.supports("NOPE"), name


class TestRoutedRandomQueries:
    """PR 8's random-query generator, driven through the federation
    mediator: whole-routed and split-routed execution over a registry of
    differently-configured engines must match the naive reference model
    row for row, and the advisor's decision log must be byte-identical
    across fresh rebuilds."""

    ROUTED_QUERIES = 60
    ROUTED_SEED = 171001792

    @staticmethod
    def build_federation(mode):
        from repro.relational.company import company_schema
        from repro.relational.workload import Workload
        from repro.federation import build_mediator
        from repro.systems.baseline import BaselineSystem
        from test_query_engine_property import company_rows

        schema = company_schema()
        backends = {
            "legacy": BaselineSystem(schema, Workload(), query_engine="legacy"),
            "streaming": BaselineSystem(
                schema, Workload(), query_engine="streaming"
            ),
            "cost-based": BaselineSystem(
                schema, Workload(),
                query_engine="streaming", cost_based_planner=True,
            ),
        }
        mediator = build_mediator(backends, schema, seed=7, mode=mode)
        for table, rows in company_rows().items():
            for row in rows:
                mediator.load_row(table, row)
        mediator.finish_load()
        return mediator

    @pytest.mark.parametrize("mode", ("whole", "split"))
    def test_routed_random_queries_match_reference(self, mode):
        from test_query_engine_property import (
            company_rows, generate_query, ref_execute,
        )

        mediator = self.build_federation(mode)
        data = company_rows()
        rng = random.Random(self.ROUTED_SEED)
        for i in range(self.ROUTED_QUERIES):
            spec = generate_query(rng)
            expected = sorted(ref_execute(spec, data))
            rows = mediator.execute(spec.sql, spec.params)
            got = sorted(tuple(r.values()) for r in rows)
            assert got == expected, (
                f"routed query #{i} (mode={mode}) diverged:\n{spec.sql}\n"
                f"params={spec.params}\nexpected={expected}\ngot={got}"
            )
        if mode == "split":
            # multi-binding specs genuinely decomposed into fragments
            assert any(r.mode == "split" for r in mediator.route_log)

    def test_advisor_decision_log_byte_identical_across_rebuilds(self):
        from test_query_engine_property import generate_query

        logs = []
        for _ in range(2):
            mediator = self.build_federation("auto")
            rng = random.Random(self.ROUTED_SEED)
            for _i in range(self.ROUTED_QUERIES):
                spec = generate_query(rng)
                mediator.execute(spec.sql, spec.params)
            logs.append(json.dumps(mediator.advisor.log_dicts()))
        assert logs[0] == logs[1]
