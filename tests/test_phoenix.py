"""Phoenix layer: catalog, baseline transformation, planner, executor,
write path with index maintenance."""

import pytest

from repro.errors import SchemaError, UnsupportedStatementError
from repro.phoenix.catalog import CF, INDEX, TABLE, VIEW
from repro.phoenix.ddl import create_baseline_schema, create_view_entry
from repro.phoenix.plans import HashJoinNode, NestedLoopJoinNode, ScanNode
from repro.relational.company import company_schema
from repro.relational.datatypes import DataType


class TestCatalog:
    def test_baseline_transformation_creates_all_tables(self, client):
        catalog = create_baseline_schema(client, company_schema())
        # 7 relations + 3 indexes
        assert len(catalog.entries(TABLE)) == 7
        assert len(catalog.entries(INDEX)) == 3
        for entry in catalog.entries():
            assert client.has_table(entry.name)

    def test_index_key_is_xtuple_plus_pk(self, client):
        catalog = create_baseline_schema(client, company_schema())
        idx = catalog.entry("Employee.idx_emp_home")
        assert idx.key_attrs == ("EHome_AID", "EID")
        assert idx.indexed_on == ("EHome_AID",)

    def test_row_key_roundtrip(self, client):
        catalog = create_baseline_schema(client, company_schema())
        wo = catalog.table_for_relation("Works_On")
        row = {"WO_EID": 3, "WO_PNo": 9, "Hours": 40}
        key = wo.encode_key(row)
        assert wo.decode_key(key) == {"WO_EID": 3, "WO_PNo": 9}

    def test_missing_key_attr_encodes_null(self, client):
        """Index keys may carry NULL components (Phoenix semantics);
        statement-level validation guards base-table writes instead."""
        catalog = create_baseline_schema(client, company_schema())
        emp = catalog.table_for_relation("Employee")
        key = emp.encode_key({"EName": "x"})
        assert emp.decode_key(key) == {"EID": None}

    def test_view_entry_key_is_last_relations_pk(self, client):
        catalog = create_baseline_schema(client, company_schema())
        entry = create_view_entry(
            client, catalog, "MV_Address__Employee", ("Address", "Employee")
        )
        assert entry.kind == VIEW
        assert entry.key_attrs == ("EID",)
        assert "Street" in entry.attrs and "EName" in entry.attrs

    def test_view_projection_must_include_key(self, client):
        catalog = create_baseline_schema(client, company_schema())
        with pytest.raises(SchemaError):
            create_view_entry(
                client, catalog, "BAD", ("Address", "Employee"),
                attributes=("Street", "EName"),
            )

    def test_resolve_from_name(self, client):
        catalog = create_baseline_schema(client, company_schema())
        assert catalog.resolve_from_name("Employee").kind == TABLE
        create_view_entry(client, catalog, "V1", ("Address", "Employee"))
        assert catalog.resolve_from_name("V1").kind == VIEW
        with pytest.raises(SchemaError):
            catalog.resolve_from_name("nope")


class TestPlanner:
    def test_point_get_for_full_key(self, company_conn):
        plan = company_conn.plan("SELECT * FROM Employee WHERE EID = ?")
        assert isinstance(plan.root, ScanNode)
        assert plan.root.access.is_point()

    def test_prefix_scan_for_key_prefix(self, company_conn):
        plan = company_conn.plan("SELECT * FROM Works_On WHERE WO_EID = ?")
        assert isinstance(plan.root, ScanNode)
        assert plan.root.access.prefix_attrs == ("WO_EID",)
        assert not plan.root.access.is_point()

    def test_covered_index_chosen_for_filter(self, company_conn):
        plan = company_conn.plan("SELECT * FROM Works_On WHERE Hours = ?")
        assert plan.root.access.entry.name == "Works_On.idx_wo_hours"
        assert plan.root.access.lookup_entry is None

    def test_full_scan_fallback(self, company_conn):
        plan = company_conn.plan("SELECT * FROM Address WHERE City = ?")
        assert plan.root.access.prefix_attrs == ()
        assert plan.root.access.entry.name == "Address"

    def test_nested_loop_join_on_keyed_inner(self, company_conn):
        plan = company_conn.plan(
            "SELECT * FROM Employee as e, Address as a "
            "WHERE a.AID = e.EHome_AID and e.EID = ?"
        )
        node = plan.root
        assert isinstance(node, NestedLoopJoinNode)
        assert node.inner.entry.name == "Address"

    def test_hash_join_for_derived_table(self, company_conn):
        plan = company_conn.plan(
            "SELECT * FROM Employee as e, "
            "(SELECT DNo FROM Department) as d WHERE e.E_DNo = d.DNo"
        )
        assert any(
            isinstance(n, HashJoinNode)
            for n in _walk(plan.root)
        )

    def test_explain_is_readable(self, company_conn):
        text = company_conn.plan(
            "SELECT * FROM Employee WHERE EID = ?"
        ).explain()
        assert "POINT GET Employee" in text


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)


class TestExecutor:
    def test_point_query(self, company_conn):
        rows = company_conn.execute_query(
            "SELECT EName FROM Employee WHERE EID = ?", (3,)
        )
        assert rows == [{"EName": "emp3"}]

    def test_two_way_join(self, company_conn):
        rows = company_conn.execute_query(
            "SELECT * FROM Employee as e, Address as a "
            "WHERE a.AID = e.EHome_AID and e.EID = ?", (3,)
        )
        assert len(rows) == 1
        assert rows[0]["AID"] == rows[0]["EHome_AID"]

    def test_three_way_join(self, company_conn):
        rows = company_conn.execute_query(
            "SELECT * FROM Department as d, Employee as e, Works_On as wo "
            "WHERE d.DNo = e.E_DNo and e.EID = wo.WO_EID and d.DNo = ?", (1,)
        )
        assert rows and all(r["DNo"] == 1 for r in rows)
        assert all(r["EID"] == r["WO_EID"] for r in rows)

    def test_order_by_and_limit(self, company_conn):
        rows = company_conn.execute_query(
            "SELECT EID FROM Employee ORDER BY EID DESC LIMIT 3"
        )
        assert [r["EID"] for r in rows] == [10, 9, 8]

    def test_group_by_aggregates(self, company_conn):
        rows = company_conn.execute_query(
            "SELECT E_DNo, COUNT(*), MIN(EID), MAX(EID) FROM Employee "
            "GROUP BY E_DNo ORDER BY E_DNo"
        )
        assert [r["E_DNo"] for r in rows] == [1, 2]
        assert all(r["COUNT(*)"] == 5 for r in rows)

    def test_sum_and_avg(self, company_conn):
        rows = company_conn.execute_query(
            "SELECT WO_PNo, SUM(Hours), AVG(Hours) FROM Works_On "
            "GROUP BY WO_PNo ORDER BY WO_PNo"
        )
        for r in rows:
            assert r["AVG(Hours)"] == pytest.approx(r["SUM(Hours)"] / 5)

    def test_distinct(self, company_conn):
        rows = company_conn.execute_query(
            "SELECT DISTINCT E_DNo FROM Employee ORDER BY E_DNo"
        )
        assert [r["E_DNo"] for r in rows] == [1, 2]

    def test_self_join(self, company_conn):
        rows = company_conn.execute_query(
            "SELECT * FROM Employee as a, Employee as b "
            "WHERE a.EID = ? and b.EID = ?", (1, 2)
        )
        assert len(rows) == 1
        names = {v for k, v in rows[0].items() if "EName" in k}
        assert names == {"emp1", "emp2"}

    def test_derived_table_join(self, company_conn):
        rows = company_conn.execute_query(
            "SELECT e.EName FROM Employee as e, "
            "(SELECT DNo FROM Department WHERE DName = ?) as d "
            "WHERE e.E_DNo = d.DNo", ("Dept1",)
        )
        assert len(rows) == 5

    def test_theta_residual_filter(self, company_conn):
        rows = company_conn.execute_query(
            "SELECT * FROM Employee as e, Works_On as wo "
            "WHERE e.EID = wo.WO_EID and wo.Hours > ? and e.EID = ?", (15, 2)
        )
        assert all(r["Hours"] > 15 for r in rows)

    def test_comparison_with_null_is_false(self, company_conn):
        company_conn.execute_write(
            "INSERT INTO Address (AID, Street) VALUES (?, ?)", (99, None)
        )
        rows = company_conn.execute_query(
            "SELECT * FROM Address WHERE Street = ? and AID = ?", (None, 99)
        )
        assert rows == []

    def test_range_predicates_on_encoded_values(self, company_conn):
        rows = company_conn.execute_query(
            "SELECT * FROM Works_On WHERE Hours >= ? and Hours <= ?", (20, 30)
        )
        assert rows and all(20 <= r["Hours"] <= 30 for r in rows)


class TestWritePath:
    def test_insert_visible_via_index(self, company_conn):
        company_conn.execute_write(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            (9, 1, 77),
        )
        rows = company_conn.execute_query(
            "SELECT * FROM Works_On WHERE Hours = ?", (77,)
        )
        assert len(rows) == 1

    def test_update_maintains_index(self, company_conn):
        company_conn.execute_write(
            "UPDATE Works_On SET Hours = ? WHERE WO_EID = ? and WO_PNo = ?",
            (99, 2, 2),
        )
        assert company_conn.execute_query(
            "SELECT * FROM Works_On WHERE Hours = ?", (99,)
        )
        # the stale index entry must be gone
        stale = company_conn.execute_query(
            "SELECT * FROM Works_On WHERE Hours = ? and WO_EID = ?", (20, 2)
        )
        assert stale == []

    def test_delete_removes_index_entries(self, company_conn):
        company_conn.execute_write(
            "DELETE FROM Works_On WHERE WO_EID = ? and WO_PNo = ?", (2, 2)
        )
        rows = company_conn.execute_query(
            "SELECT * FROM Works_On WHERE Hours = ? and WO_EID = ?", (20, 2)
        )
        assert rows == []

    def test_multi_row_write_rejected(self, company_conn):
        with pytest.raises(UnsupportedStatementError):
            company_conn.execute_write(
                "DELETE FROM Works_On WHERE WO_EID = ?", (2,)
            )
        with pytest.raises(UnsupportedStatementError):
            company_conn.execute_write(
                "UPDATE Employee SET EName = ? WHERE E_DNo = ?", ("x", 1)
            )

    def test_key_update_rejected(self, company_conn):
        with pytest.raises(UnsupportedStatementError):
            company_conn.execute_write(
                "UPDATE Employee SET EID = ? WHERE EID = ?", (100, 1)
            )

    def test_update_missing_row_returns_zero(self, company_conn):
        n = company_conn.execute_write(
            "UPDATE Employee SET EName = ? WHERE EID = ?", ("x", 12345)
        )
        assert n == 0

    def test_nl_join_issues_one_probe_per_outer_row(self, company_conn):
        sim = company_conn.sim
        before = sim.metrics.counters().get("client.rpc", 0)
        company_conn.execute_query(
            "SELECT * FROM Employee as e, Address as a WHERE a.AID = e.EHome_AID"
        )
        rpcs = sim.metrics.counters()["client.rpc"] - before
        # full scan of Employee (1 open + 1 batch) + 10 point gets
        assert rpcs >= 12


class TestSubqueryUnderJoin:
    """SubqueryNode feeding the OUTER side of a join — derived rows
    (keyed ``(alias, out_name)``) must drive later joins exactly like
    base-table rows, on every engine. Expected row counts are derived
    by hand from the deterministic company data."""

    ENGINE_MODES = (("legacy", False), ("streaming", False), ("streaming", True))

    def _all_engines(self, conn, sql, params=()):
        out = []
        try:
            for engine, cost_based in self.ENGINE_MODES:
                conn.configure_engine(engine=engine, cost_based=cost_based)
                rows = conn.execute_query(sql, params)
                out.append(sorted(tuple(sorted(r.items())) for r in rows))
        finally:
            conn.configure_engine(engine="legacy", cost_based=False)
        assert out[0] == out[1] == out[2]
        return out[0]

    def test_derived_feeds_nl_join_outer_keys(self, company_conn):
        """The derived binding's EID (a ``(d, EID)`` outer key merged
        through a hash join) probes the Works_On NL join."""
        sql = (
            "SELECT * FROM Works_On as wo, "
            "(SELECT EID FROM Employee WHERE E_DNo = ?) as d, Address as a "
            "WHERE wo.WO_EID = d.EID and a.AID = d.EID"
        )
        text = company_conn.plan(sql).root.describe()
        assert "NL JOIN -> Works_On" in text and "DERIVED TABLE as d" in text
        rows = self._all_engines(company_conn, sql, (1,))
        # dept 1 = even EIDs {2,4,6,8,10}; AID<=5 keeps {2,4}; each even
        # employee has exactly one Works_On row (pno=2)
        assert len(rows) == 2
        assert sorted(dict(r)["EID"] for r in rows) == [2, 4]

    def test_join_of_two_derived_tables(self, company_conn):
        sql = (
            "SELECT * FROM (SELECT EID, E_DNo FROM Employee) as d1, "
            "(SELECT DNo, DName FROM Department) as d2 "
            "WHERE d1.E_DNo = d2.DNo"
        )
        rows = self._all_engines(company_conn, sql)
        assert len(rows) == 10  # every employee matches its department

    def test_aggregate_derived_table_on_build_side(self, company_conn):
        sql = (
            "SELECT * FROM "
            "(SELECT WO_EID, SUM(Hours) FROM Works_On GROUP BY WO_EID) as t, "
            "Employee as e WHERE t.WO_EID = e.EID"
        )
        rows = self._all_engines(company_conn, sql)
        assert len(rows) == 10  # every employee works on something
        by_eid = {dict(r)["EID"]: dict(r)["SUM(Hours)"] for r in rows}
        # odd EIDs work pno 1 and 3 (10+30), even EIDs only pno 2 (20)
        assert by_eid[1] == 40 and by_eid[2] == 20

    def test_derived_as_sole_outer_of_hash_join(self, company_conn):
        sql = (
            "SELECT * FROM "
            "(SELECT EID FROM Employee WHERE E_DNo = ?) as d, Works_On as wo "
            "WHERE d.EID = wo.WO_EID"
        )
        rows = self._all_engines(company_conn, sql, (2,))
        assert len(rows) == 10  # 5 odd employees x 2 Works_On rows each
