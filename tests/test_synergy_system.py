"""SynergySystem façade behaviours not covered elsewhere."""

import pytest

from repro.relational.company import COMPANY_ROOTS, company_schema, company_workload
from repro.synergy.system import SynergySystem
from tests.conftest import load_company_data


class TestFacade:
    def test_statements_cover_whole_workload(self, company_synergy):
        assert set(company_synergy.statements) == {"W1", "W2", "W3"}

    def test_reads_use_views(self, company_synergy):
        assert "MV_Address__Employee" in company_synergy.statements["W1"]
        assert "MV_Employee__Works_On" in company_synergy.statements["W2"]

    def test_execute_id(self, company_synergy):
        rows = company_synergy.execute_id("W1", (3,))
        assert len(rows) == 1

    def test_rewrite_ad_hoc_uses_materialized_views_only(self, company_synergy):
        sql = (
            "SELECT * FROM Employee as e, Address as a "
            "WHERE a.AID = e.EHome_AID and e.EID = ?"
        )
        rewritten = company_synergy.rewrite_ad_hoc(sql)
        assert "MV_Address__Employee" in rewritten
        # a join whose view was never selected stays on base tables
        sql2 = (
            "SELECT * FROM Employee as e, Dependent as d "
            "WHERE e.EID = d.DP_EID"
        )
        assert "MV_" not in company_synergy.rewrite_ad_hoc(sql2)

    def test_ad_hoc_write_passthrough(self, company_synergy):
        sql = "UPDATE Department SET DName = ? WHERE DNo = ?"
        assert company_synergy.rewrite_ad_hoc(sql) == sql

    def test_db_size_grows_with_writes(self, company_synergy):
        before = company_synergy.db_size_bytes()
        company_synergy.execute(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            (3, 2, 5),
        )
        assert company_synergy.db_size_bytes() > before

    def test_describe_lists_everything(self, company_synergy):
        text = company_synergy.describe()
        assert "Address-Employee" in text
        assert "view-indexes" in text

    def test_timed_returns_positive_virtual_time(self, company_synergy):
        _, ms = company_synergy.timed(company_synergy.statements["W3"], (30,))
        assert ms > 0

    def test_two_tx_slaves_round_robin(self):
        system = SynergySystem(
            company_schema(), company_workload(), COMPANY_ROOTS, num_tx_slaves=2
        )
        load_company_data(system)
        system.finish_load()
        for i in range(4):
            system.execute(
                "INSERT INTO Address (AID, Street, City, Zip) VALUES (?, ?, ?, ?)",
                (100 + i, "s", "c", "z"),
            )
        walsizes = [len(s.wal) for s in system.txlayer.slaves]
        assert walsizes == [2, 2]

    def test_query_results_match_baseline_semantics(self, company_synergy):
        """Rewritten W2 returns exactly what the base-table join returns."""
        via_views = company_synergy.execute_id("W2", (1,))
        base_sql = company_workload().by_id("W2").sql
        via_base = company_synergy.execute(base_sql, (1,))
        key = lambda r: (r["EID"], r["WO_PNo"])
        assert sorted(map(key, via_views)) == sorted(map(key, via_base))
