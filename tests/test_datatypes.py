"""Value-codec tests, including order preservation (hypothesis)."""

import pytest
from hypothesis import given, strategies as st

from repro.hbase.bytes_util import decode_key, encode_key, next_key, split_key
from repro.relational.datatypes import (
    DataType,
    decode_value,
    encode_value,
    value_size_bytes,
)

INTS = st.integers(min_value=-(2**62), max_value=2**62)
TEXT = st.text(max_size=64)


class TestScalarCodec:
    @given(INTS)
    def test_int_roundtrip(self, v):
        assert decode_value(DataType.INT, encode_value(DataType.INT, v)) == v

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_roundtrip(self, v):
        assert decode_value(DataType.FLOAT, encode_value(DataType.FLOAT, v)) == v

    @given(TEXT)
    def test_varchar_roundtrip(self, v):
        assert (
            decode_value(DataType.VARCHAR, encode_value(DataType.VARCHAR, v)) == v
            or v == ""  # empty string encodes like NULL, as in HBase
        )

    @given(st.booleans())
    def test_bool_roundtrip(self, v):
        assert decode_value(DataType.BOOL, encode_value(DataType.BOOL, v)) is v

    def test_null_encodes_empty(self):
        for dtype in DataType:
            assert encode_value(dtype, None) == b""
            assert decode_value(dtype, b"") is None

    @given(INTS, INTS)
    def test_int_encoding_preserves_order(self, a, b):
        ea, eb = encode_value(DataType.INT, a), encode_value(DataType.INT, b)
        assert (a < b) == (ea < eb)

    @given(st.integers(min_value=0, max_value=3_000_000),
           st.integers(min_value=0, max_value=3_000_000))
    def test_date_encoding_preserves_order(self, a, b):
        ea, eb = encode_value(DataType.DATE, a), encode_value(DataType.DATE, b)
        assert (a < b) == (ea < eb)

    def test_size_accounting(self):
        assert value_size_bytes(DataType.INT, 5) == 8
        assert value_size_bytes(DataType.VARCHAR, "abc") == 3


KEY_TYPES = st.sampled_from([DataType.INT, DataType.VARCHAR])


class TestCompositeKeys:
    @given(st.lists(st.tuples(KEY_TYPES, st.integers(0, 10**9) | TEXT),
                    min_size=1, max_size=4))
    def test_key_roundtrip(self, parts):
        dtypes, values = [], []
        for dtype, value in parts:
            if dtype is DataType.INT and isinstance(value, str):
                value = len(value)
            if dtype is DataType.VARCHAR and isinstance(value, int):
                value = str(value)
            dtypes.append(dtype)
            values.append(value)
        key = encode_key(dtypes, values)
        decoded = decode_key(dtypes, key)
        expected = tuple(None if v == "" else v for v in values)
        assert decoded == expected

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            encode_key([DataType.INT], [1, 2])
        with pytest.raises(ValueError):
            decode_key([DataType.INT, DataType.INT],
                       encode_key([DataType.INT], [1]))

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_int_composite_keys_sort_like_tuples(self, a, b):
        dtypes = [DataType.INT, DataType.INT]
        ka = encode_key(dtypes, [a, b])
        kb = encode_key(dtypes, [b, a])
        assert ((a, b) < (b, a)) == (ka < kb)

    def test_embedded_delimiter_escaped(self):
        dtypes = [DataType.VARCHAR, DataType.VARCHAR]
        key = encode_key(dtypes, ["a\x00b", "c"])
        assert decode_key(dtypes, key) == ("a\x00b", "c")
        assert len(split_key(key)) == 2

    def test_next_key_orders_after_prefix(self):
        key = encode_key([DataType.INT], [7])
        assert next_key(key) > key
