"""Scale-out behaviour under the deterministic scheduler: per-server
serial routing, throughput scaling with server count, and byte-identical
reruns of the scale-out experiment."""

import json

from repro.bench.experiments import _scaleout_cell, run_scaleout
from repro.config import ClusterConfig
from repro.hbase import Get, HBaseClient, HBaseCluster, Put, RegionBalancer
from repro.hbase.client import HTable
from repro.sim.clock import Simulation
from repro.sim.scheduler import DeterministicScheduler

CF = b"cf"


def build_cluster(num_servers, rows=256, threshold=1024, seed=3):
    sim = Simulation(seed=seed)
    cluster = HBaseCluster(
        sim,
        ClusterConfig(
            num_region_servers=num_servers,
            region_split_threshold_bytes=threshold,
        ),
    )
    client = HBaseClient(cluster)
    table = client.create_table("s", families=(CF,))
    puts = []
    for i in range(rows):
        p = Put(b"%06d" % i)
        p.add(CF, b"v", b"x" * 16)
        puts.append(p)
    table.put_batch(puts)
    RegionBalancer(cluster, policy="load-aware").rebalance()
    sim.reset_clock()
    return sim, cluster


def drive(sim, cluster, clients, ops=30, rows=256):
    scheduler = DeterministicScheduler(sim)
    for i in range(clients):
        handle = HTable(cluster, "s")

        def program(vc, handle=handle, i=i):
            for j in range(ops):
                yield "op"
                handle.get(Get(b"%06d" % ((i * 37 + j * 11) % rows)))
                vc.stats.committed += 1

        scheduler.add_client(f"c{i}", program)
    return scheduler.run()


class TestServerRouting:
    def test_ops_queue_on_the_owning_server(self):
        sim, cluster = build_cluster(num_servers=1)
        report = drive(sim, cluster, clients=8)
        assert report.serial_wait_count > 0  # one server: real queueing
        assert report.committed == 8 * 30

    def test_more_servers_mean_more_parallelism(self):
        makespans = {}
        for servers in (1, 4):
            sim, cluster = build_cluster(num_servers=servers)
            makespans[servers] = drive(sim, cluster, clients=8).makespan_ms
        assert makespans[4] < makespans[1]

    def test_single_client_pays_no_queueing(self):
        sim, cluster = build_cluster(num_servers=2)
        report = drive(sim, cluster, clients=1)
        assert report.serial_wait_count == 0


class TestScaleoutExperiment:
    def run_small(self):
        return run_scaleout(
            server_counts=(1, 2, 4),
            client_counts=(8,),
            ops_per_client=16,
            preload_rows=512,
            split_threshold=2048,
        )

    def test_throughput_monotone_in_server_count(self):
        results = self.run_small()
        series = results["throughput"].series[0]
        values = [series.points[n].mean for n in (1, 2, 4)]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_rerun_is_byte_identical(self):
        a = {k: r.to_dict() for k, r in self.run_small().items()}
        b = {k: r.to_dict() for k, r in self.run_small().items()}
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_cell_reports_balanced_layout(self):
        report, regions, distribution = _scaleout_cell(
            num_servers=4,
            clients=4,
            ops_per_client=8,
            preload_rows=512,
            split_threshold=2048,
            value_bytes=16,
            seed=20170904,
        )
        assert regions >= 4
        assert max(distribution.values()) - min(distribution.values()) <= 1
        assert report.committed == 4 * 8
