"""Synergy runtime: view maintenance, hierarchical locking, write
procedures (6-step update with dirty marking), transaction layer, and
the read-committed guarantees exercised via deterministic interleaving."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LockTimeoutError, UnsupportedStatementError
from repro.relational.company import COMPANY_ROOTS, company_schema, company_workload
from repro.synergy.system import SynergySystem
from tests.conftest import load_company_data


def fresh_system() -> SynergySystem:
    system = SynergySystem(company_schema(), company_workload(), COMPANY_ROOTS)
    load_company_data(system)
    system.finish_load()
    return system


def view_rows(system, view_name, where="", params=()):
    sql = f"SELECT * FROM {view_name}"
    if where:
        sql += f" WHERE {where}"
    return system.execute(sql, params)


class TestViewMaintenanceInsert:
    def test_applicability_last_relation_only(self, company_synergy):
        m = company_synergy.maintainer
        assert [v.display_name for v in m.views_for_insert("Works_On")] == [
            "Employee-Works_On"
        ]
        assert [v.display_name for v in m.views_for_insert("Employee")] == [
            "Address-Employee"
        ]
        assert m.views_for_insert("Address") == []

    def test_insert_constructs_view_tuple_from_ancestors(self, company_synergy):
        company_synergy.execute(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            (1, 2, 55),
        )
        rows = view_rows(
            company_synergy, "MV_Employee__Works_On",
            "WO_EID = ? and WO_PNo = ?", (1, 2),
        )
        assert len(rows) == 1
        assert rows[0]["EName"] == "emp1"  # ancestor attributes merged in
        assert rows[0]["Hours"] == 55

    def test_insert_with_dangling_fk_skips_view(self, company_synergy):
        company_synergy.execute(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            (999, 1, 10),  # employee 999 does not exist
        )
        assert view_rows(
            company_synergy, "MV_Employee__Works_On",
            "WO_EID = ? and WO_PNo = ?", (999, 1),
        ) == []
        # base row still written
        assert company_synergy.execute(
            "SELECT * FROM Works_On WHERE WO_EID = ? and WO_PNo = ?", (999, 1)
        )

    def test_insert_updates_view_indexes(self, company_synergy):
        company_synergy.execute(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            (1, 2, 123),
        )
        rows = view_rows(
            company_synergy, "MV_Employee__Works_On", "Hours = ?", (123,)
        )
        assert len(rows) == 1


class TestViewMaintenanceDelete:
    def test_delete_removes_view_row_and_index(self, company_synergy):
        company_synergy.execute(
            "DELETE FROM Works_On WHERE WO_EID = ? and WO_PNo = ?", (2, 2)
        )
        assert view_rows(
            company_synergy, "MV_Employee__Works_On",
            "WO_EID = ? and WO_PNo = ?", (2, 2),
        ) == []
        assert not any(
            r["WO_EID"] == 2 and r["WO_PNo"] == 2
            for r in view_rows(
                company_synergy, "MV_Employee__Works_On", "Hours = ?", (20,)
            )
        )

    def test_delete_missing_row_is_noop(self, company_synergy):
        assert company_synergy.execute(
            "DELETE FROM Works_On WHERE WO_EID = ? and WO_PNo = ?", (99, 99)
        ) is False

    def test_no_cascading_deletes(self, company_synergy):
        """Deleting an Employee does not delete Works_On view rows for it
        (the paper performs no cascades, Sec. VII-B)."""
        company_synergy.execute("DELETE FROM Employee WHERE EID = ?", (2,))
        remaining = view_rows(
            company_synergy, "MV_Employee__Works_On", "WO_EID = ?", (2,)
        )
        assert remaining  # still present, as specified


class TestViewMaintenanceUpdate:
    def test_update_last_relation_direct_by_key(self, company_synergy):
        company_synergy.execute(
            "UPDATE Works_On SET Hours = ? WHERE WO_EID = ? and WO_PNo = ?",
            (88, 2, 2),
        )
        rows = view_rows(
            company_synergy, "MV_Employee__Works_On",
            "WO_EID = ? and WO_PNo = ?", (2, 2),
        )
        assert rows[0]["Hours"] == 88

    def test_update_mid_path_fans_out_to_all_view_rows(self, company_synergy):
        company_synergy.execute(
            "UPDATE Employee SET EName = ? WHERE EID = ?", ("renamed", 2)
        )
        for row in view_rows(
            company_synergy, "MV_Employee__Works_On", "WO_EID = ?", (2,)
        ):
            assert row["EName"] == "renamed"
        rows = view_rows(company_synergy, "MV_Address__Employee", "EID = ?", (2,))
        assert rows[0]["EName"] == "renamed"

    def test_update_unmarks_rows_afterwards(self, company_synergy):
        company_synergy.execute(
            "UPDATE Employee SET EName = ? WHERE EID = ?", ("x", 1)
        )
        # a subsequent scan must not restart (no rows left marked)
        before = company_synergy.sim.metrics.counters().get(
            "phoenix.dirty_restarts", 0
        )
        view_rows(company_synergy, "MV_Employee__Works_On")
        after = company_synergy.sim.metrics.counters().get(
            "phoenix.dirty_restarts", 0
        )
        assert after == before


class TestHierarchicalLocking:
    def test_single_lock_per_write(self, company_synergy):
        sim = company_synergy.sim
        before = sim.metrics.counters().get("client.check_and_put", 0)
        company_synergy.execute(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            (1, 2, 1),
        )
        acquires = sim.metrics.counters()["client.check_and_put"] - before
        assert acquires == 1  # exactly one lock round trip

    def test_lock_is_on_root_key(self, company_synergy):
        events = []

        def hook(step):
            if step == "after_lock":
                # employee 2's home address is AID 3
                events.append(company_synergy.locks.is_held("Address", [3]))

        company_synergy.execute(
            "UPDATE Employee SET EName = ? WHERE EID = ?", ("y", 2),
            on_step=hook,
        )
        assert events == [True]
        assert not company_synergy.locks.is_held("Address", [3])

    def test_unassigned_relation_writes_without_lock(self):
        """TPC-W Shopping_cart-style relation: Department_Location is in
        a tree; use a relation outside any tree instead — none exists in
        Company, so assert root relations lock their own key."""
        system = fresh_system()
        events = []

        def hook(step):
            if step == "after_lock":
                events.append(system.locks.is_held("Department", [1]))

        system.execute(
            "UPDATE Department SET DName = ? WHERE DNo = ?", ("z", 1),
            on_step=hook,
        )
        assert events == [True]

    def test_contended_lock_times_out(self, company_synergy):
        row = company_synergy.locks.acquire("Address", [3])
        company_synergy.locks.max_attempts = 3
        with pytest.raises(LockTimeoutError):
            company_synergy.locks.acquire("Address", [3])
        company_synergy.locks.release("Address", row)
        # after release it is acquirable again
        row2 = company_synergy.locks.acquire("Address", [3])
        company_synergy.locks.release("Address", row2)

    def test_lock_released_after_failed_procedure(self, company_synergy):
        with pytest.raises(UnsupportedStatementError):
            company_synergy.execute(
                "UPDATE Works_On SET WO_PNo = ? WHERE WO_EID = ? and WO_PNo = ?",
                (9, 2, 2),
            )
        # key-attribute update is rejected before locking; now verify a
        # successful path leaves the lock free
        company_synergy.execute(
            "UPDATE Works_On SET Hours = ? WHERE WO_EID = ? and WO_PNo = ?",
            (1, 2, 2),
        )
        assert not company_synergy.locks.is_held("Address", [3])


class TestReadCommitted:
    def test_concurrent_read_during_update_sees_no_torn_rows(self):
        """Between mark and unmark, a scan of the view observes dirty
        rows and restarts; once the update finishes it sees the new
        value — never a mix (paper Sec. VIII-C)."""
        system = fresh_system()
        observed = []

        def hook(step):
            if step == "after_mark":
                # scanning now would observe marked rows -> restart; the
                # executor retries until the data is clean, which in the
                # single-threaded simulation happens after the update.
                restarts_before = system.sim.metrics.counters().get(
                    "phoenix.dirty_restarts", 0
                )
                names = {
                    r["EName"]
                    for r in system.execute(
                        "SELECT * FROM MV_Employee__Works_On WHERE WO_EID = ?",
                        (2,),
                    )
                }
                restarts_after = system.sim.metrics.counters().get(
                    "phoenix.dirty_restarts", 0
                )
                observed.append((names, restarts_after - restarts_before))

        # NOTE: in the single-threaded simulator the inner read runs in
        # the marked state; MAX restarts would spin forever, so instead
        # we assert the *detection*: reading a marked view raises the
        # restart signal internally. We cap restarts by reading the
        # view-index-free base table afterwards.
        from repro.errors import ReproError

        try:
            system.execute(
                "UPDATE Employee SET EName = ? WHERE EID = ?", ("torn?", 2),
                on_step=hook,
            )
        except ReproError:
            pass
        # Either the read restarted (>=1) and kept restarting until the
        # executor gave up, or (if it completed) it saw consistent rows.
        assert observed == [] or all(
            restarts >= 1 or len(names) == 1 for names, restarts in observed
        )

    def test_marked_rows_trigger_restart_counter(self):
        system = fresh_system()
        entry = system.catalog.view("MV_Employee__Works_On")
        rows = system.maintainer.locate_view_rows(
            system.views[1], "Employee", {"EID": 2}
        )
        system.maintainer.mark_rows(entry, rows, dirty=True)
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            system.execute(
                "SELECT * FROM MV_Employee__Works_On WHERE WO_EID = ?", (2,)
            )
        assert system.sim.metrics.counters()["phoenix.dirty_restarts"] > 0
        system.maintainer.mark_rows(entry, rows, dirty=False)
        assert system.execute(
            "SELECT * FROM MV_Employee__Works_On WHERE WO_EID = ?", (2,)
        )


class TestTransactionLayer:
    def test_wal_records_and_commits(self, company_synergy):
        company_synergy.execute(
            "INSERT INTO Address (AID, Street, City, Zip) VALUES (?, ?, ?, ?)",
            (50, "s", "c", "z"),
        )
        slave = company_synergy.txlayer.slaves[0]
        assert slave.wal and slave.wal[-1].status == "committed"

    def test_failover_replays_pending(self, company_synergy):
        layer = company_synergy.txlayer
        slave = layer.slaves[0]
        from repro.synergy.txlayer import TxLogEntry

        slave.wal.append(TxLogEntry(
            tx_id=9999,
            sql="INSERT INTO Address (AID, Street, City, Zip) VALUES (?, ?, ?, ?)",
            params=(60, "s", "c", "z"),
        ))
        slave.crash()
        replayed = layer.recover_slave(slave)
        assert replayed == 1
        rows = company_synergy.execute("SELECT * FROM Address WHERE AID = ?", (60,))
        assert len(rows) == 1

    def test_reads_rejected_by_tx_layer(self, company_synergy):
        with pytest.raises(UnsupportedStatementError):
            company_synergy.txlayer.execute_write("SELECT * FROM Address")

    def test_plan_generator_validates_keys(self, company_synergy):
        from repro.sql.parser import parse_statement

        with pytest.raises(UnsupportedStatementError):
            company_synergy.plan_generator.generate(
                parse_statement("DELETE FROM Works_On WHERE WO_EID = ?"), (1,)
            )


class TestViewConsistencyProperty:
    """The central invariant: after any sequence of writes, each view's
    contents equal the join of its base relations."""

    @staticmethod
    def _join_baseline(system):
        rows = system.execute(
            "SELECT * FROM Employee as e, Works_On as wo "
            "WHERE e.EID = wo.WO_EID"
        )
        return {(r["WO_EID"], r["WO_PNo"], r["Hours"], r["EName"]) for r in rows
                } if rows else set()

    @staticmethod
    def _view_contents(system):
        rows = system.execute("SELECT * FROM MV_Employee__Works_On")
        return {(r["WO_EID"], r["WO_PNo"], r["Hours"], r["EName"]) for r in rows}

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "update", "delete", "rename"]),
                st.integers(1, 10),
                st.integers(1, 3),
                st.integers(1, 200),
            ),
            max_size=8,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_view_equals_join_after_random_writes(self, ops):
        system = fresh_system()
        for op, eid, pno, hours in ops:
            if op == "insert":
                system.execute(
                    "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) "
                    "VALUES (?, ?, ?)", (eid, pno, hours),
                )
            elif op == "update":
                system.execute(
                    "UPDATE Works_On SET Hours = ? "
                    "WHERE WO_EID = ? and WO_PNo = ?", (hours, eid, pno),
                )
            elif op == "delete":
                system.execute(
                    "DELETE FROM Works_On WHERE WO_EID = ? and WO_PNo = ?",
                    (eid, pno),
                )
            else:
                system.execute(
                    "UPDATE Employee SET EName = ? WHERE EID = ?",
                    (f"emp{eid}-v{hours}", eid),
                )
        assert self._view_contents(system) == self._join_baseline(system)
