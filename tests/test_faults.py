"""Chaos engine behaviour: deterministic fault plans, injector weaving,
bounded failover retry, scan resume across crash/recovery, and the
durability/scan-consistency oracle (including that it has teeth)."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig
from repro.errors import RegionRetriesExhaustedError
from repro.hbase import HBaseClient, HBaseCluster, Put
from repro.hbase.client import HTable
from repro.sim.clock import Simulation
from repro.sim.faults import (
    FAMILY,
    QUALIFIER,
    ChaosHistory,
    FailoverPolicy,
    FaultConfig,
    ScanObservation,
    build_fault_plan,
    chaos_scan,
    check_invariants,
    run_chaos_cell,
)
from repro.sim.rng import derive_rng
from repro.sim.scheduler import DeterministicScheduler


class TestFaultPlan:
    NAMES = ["rs1", "rs2", "rs3"]

    def plan(self, cycles=6, seed=7, **overrides):
        cfg = FaultConfig(cycles=cycles, **overrides)
        return build_fault_plan(self.NAMES, cfg, derive_rng(seed, cfg.label))

    def test_plan_is_deterministic(self):
        assert self.plan() == self.plan()

    def test_three_events_per_cycle_in_time_order(self):
        plan = self.plan(cycles=5)
        assert len(plan) == 15
        assert [e.at_ms for e in plan] == sorted(e.at_ms for e in plan)

    def test_per_server_lifecycle_alternates(self):
        """Each server's event stream must be crash -> recover ->
        restart, repeated — never two crashes without a restart between."""
        per_server: dict[str, list[str]] = {}
        for e in self.plan(cycles=8, crash_interval_ms=10.0):
            per_server.setdefault(e.server, []).append(e.kind)
        for kinds in per_server.values():
            for i, kind in enumerate(kinds):
                assert kind == ("crash", "recover", "restart")[i % 3]

    def test_single_server_cluster_gets_no_faults(self):
        """A cluster that can never spare a server plans nothing rather
        than crashing the planner (or the last live server)."""
        plan = build_fault_plan(
            ["only"], FaultConfig(cycles=3), derive_rng(1, "faults")
        )
        assert plan == []

    def test_never_kills_the_last_live_server(self):
        """Even with gaps far shorter than the down window, at least one
        server stays up at every crash instant."""
        plan = build_fault_plan(
            ["a", "b"],
            FaultConfig(
                cycles=10,
                crash_interval_ms=1.0,
                failover_delay_ms=50.0,
                restart_delay_ms=50.0,
                interval_jitter=0.0,
            ),
            derive_rng(3, "faults"),
        )
        down_until: dict[str, float] = {}
        for e in plan:
            if e.kind == "crash":
                live = [
                    n for n in ("a", "b")
                    if n != e.server and down_until.get(n, 0.0) <= e.at_ms
                ]
                assert live, f"crash of {e.server} at {e.at_ms} left no server"
                down_until[e.server] = e.at_ms + 100.0
            elif e.kind == "restart":
                down_until[e.server] = e.at_ms


def build_chaos_fixture(num_servers=2, rows=60, split_at=(20, 40), seed=11):
    """A small cluster with the key space spread over ``num_servers``."""
    sim = Simulation(seed=seed)
    cluster = HBaseCluster(
        sim, ClusterConfig(num_region_servers=num_servers, seed=seed)
    )
    client = HBaseClient(cluster)
    splits = [b"%08d" % k for k in split_at]
    table = client.create_table("c", families=(FAMILY,), split_keys=splits)
    puts = []
    for i in range(rows):
        p = Put(b"%08d" % i)
        p.add(FAMILY, QUALIFIER, b"seed-%06d" % i)
        puts.append(p)
    table.put_batch(puts)
    sim.reset_clock()
    return sim, cluster


class TestChaosCell:
    def test_clients_ride_out_crash_recover_cycles(self):
        run = run_chaos_cell(
            clients=8, ops_per_client=32, fault_config=FaultConfig(cycles=2)
        )
        assert run.violations == []
        assert run.history.crash_count >= 2
        assert run.history.recover_count >= 2
        assert run.history.regions_recovered > 0
        assert run.history.failover_retries > 0  # ops genuinely stalled
        assert run.history.stalls_ms  # and recovered after the stall
        assert run.report.committed == 8 * 32  # nothing gave up

    def test_injector_is_invisible_without_cycles(self):
        """cycles=0 must behave exactly like a fault-free scheduled run."""
        run = run_chaos_cell(clients=4, fault_config=FaultConfig(cycles=0))
        assert run.history.crash_count == 0
        assert run.history.failover_retries == 0
        assert run.violations == []

    def test_injector_daemon_does_not_stretch_the_makespan(self):
        """A fault planned long after the workload ends is wound down,
        not waited for."""
        late = FaultConfig(cycles=1, first_crash_ms=10_000_000.0)
        run = run_chaos_cell(clients=2, ops_per_client=4, fault_config=late)
        assert run.history.crash_count == 0
        assert run.report.makespan_ms < 1_000_000.0
        assert run.report.clients["fault-injector"]["committed"] == 0

    @pytest.mark.parametrize("seed", [1, 2, 20170904])
    def test_invariants_hold_across_seeds(self, seed):
        run = run_chaos_cell(
            clients=6,
            ops_per_client=24,
            fault_config=FaultConfig(cycles=3, crash_interval_ms=40.0),
            seed=seed,
        )
        assert run.violations == []

    def test_rerun_is_byte_identical(self):
        def one():
            run = run_chaos_cell(
                clients=6, ops_per_client=24,
                fault_config=FaultConfig(cycles=2),
            )
            return (
                run.as_dict(),
                run.report.as_dict(),
                run.history.acked,
                [s.rows for s in run.history.scans],
                run.history.events,
            )

        assert one() == one()

    def test_outage_longer_than_retry_budget_is_a_typed_failure(self):
        """A region that never comes back must surface the bounded,
        typed exhaustion error — not loop forever on meta retries."""
        with pytest.raises(RegionRetriesExhaustedError):
            run_chaos_cell(
                clients=2,
                ops_per_client=12,
                fault_config=FaultConfig(
                    cycles=1, first_crash_ms=2.0, failover_delay_ms=10_000.0
                ),
                policy=FailoverPolicy(
                    max_failover_retries=3, retry_backoff_ms=2.0
                ),
            )


class TestScanResume:
    def run_scan_with_fault(self, victim_index, t_crash, t_recover):
        """Drive one chaos scan over the whole table while a surgical
        daemon crashes (and later recovers) one chosen server."""
        sim, cluster = build_chaos_fixture()
        history = ChaosHistory()
        policy = FailoverPolicy(scan_chunk_rows=8)
        handle = HTable(cluster, "c")
        victim = cluster.servers[victim_index]
        scheduler = DeterministicScheduler(sim)

        def scanner(vc):
            yield from chaos_scan(vc, handle, b"", None, history, policy)

        def faulter(vc):
            vc.clock.advance(t_crash)
            yield "crash"
            victim.crash()
            vc.clock.advance(t_recover - t_crash)
            yield "recover"
            cluster.recover_server(victim)

        scheduler.add_client("scanner", scanner)
        scheduler.add_client("faulter", faulter, daemon=True)
        scheduler.run()
        return history

    def test_scan_resumes_after_failover_with_no_dup_or_loss(self):
        """Crash the server the scan has not reached yet, with a
        recovery that lands only after the scan has already failed and
        backed off: the scan must retry, reopen at the cursor on the
        recovered region, and deliver every row exactly once."""
        history = self.run_scan_with_fault(
            victim_index=1, t_crash=1.0, t_recover=6.0
        )
        assert history.failover_retries > 0  # the outage was observed
        rows = [r for r, _v in history.scans[0].rows]
        assert rows == sorted(set(rows))
        assert rows == [b"%08d" % i for i in range(60)]

    def test_open_scan_rides_an_in_flight_recovery(self):
        """Recovery completing while the scan generator is open: the
        client absorbs it inside HTable.scan (meta round trip + reopen
        on the recovered region) without a program-level retry."""
        history = self.run_scan_with_fault(
            victim_index=0, t_crash=0.9, t_recover=0.91
        )
        assert history.failover_retries == 0  # absorbed inside the scan
        rows = [r for r, _v in history.scans[0].rows]
        assert rows == [b"%08d" % i for i in range(60)]

    def test_scan_retry_budget_is_per_outage_not_per_scan(self):
        """A long scan riding out several separately-recovered outages
        must not exhaust a cumulative budget: each recovered outage
        resets the retry counter, so only a region that truly never
        comes back can exhaust it."""
        sim, cluster = build_chaos_fixture()
        history = ChaosHistory()
        policy = FailoverPolicy(
            scan_chunk_rows=4, max_failover_retries=3, retry_backoff_ms=2.0
        )
        handle = HTable(cluster, "c")
        scheduler = DeterministicScheduler(sim)

        def scanner(vc):
            yield from chaos_scan(vc, handle, b"", None, history, policy)

        def faulter(vc):
            for cycle in range(5):
                victim = cluster.servers[cycle % 2]
                vc.clock.advance(0.8)
                yield "crash"
                victim.crash()
                vc.clock.advance(2.5)
                yield "recover"
                cluster.recover_server(victim)
                victim.restart()

        scheduler.add_client("scanner", scanner)
        scheduler.add_client("faulter", faulter, daemon=True)
        scheduler.run()
        rows = [r for r, _v in history.scans[0].rows]
        assert rows == [b"%08d" % i for i in range(60)]
        # more total retries than one outage's budget were ridden out
        assert history.failover_retries > policy.max_failover_retries

    def test_clean_scan_without_faults(self):
        sim, cluster = build_chaos_fixture()
        history = ChaosHistory()
        handle = HTable(cluster, "c")
        scheduler = DeterministicScheduler(sim)

        def scanner(vc):
            yield from chaos_scan(
                vc, handle, b"", None, history, FailoverPolicy()
            )

        scheduler.add_client("scanner", scanner)
        scheduler.run()
        assert history.failover_retries == 0
        assert len(history.scans[0].rows) == 60


class TestOracleHasTeeth:
    """The invariant checker must actually detect corruption — a chaos
    harness whose oracle cannot fail proves nothing."""

    def fixture(self):
        sim, cluster = build_chaos_fixture(rows=10)
        history = ChaosHistory()
        for i in range(10):
            history.record_ack(b"%08d" % i, b"seed-%06d" % i)
        return cluster, history

    def test_clean_state_passes(self):
        cluster, history = self.fixture()
        assert check_invariants(history, HTable(cluster, "c")) == []

    def test_lost_acked_write_is_detected(self):
        cluster, history = self.fixture()
        history.record_ack(b"%08d" % 99, b"never-applied")
        violations = check_invariants(history, HTable(cluster, "c"))
        assert any("lost" in v for v in violations)

    def test_stale_value_is_detected(self):
        cluster, history = self.fixture()
        # history claims a newer value than the store ever saw
        history.record_ack(b"%08d" % 3, b"newer")
        violations = check_invariants(history, HTable(cluster, "c"))
        assert any("serial replay" in v for v in violations)

    def test_phantom_row_is_detected(self):
        cluster, history = self.fixture()
        history.acked = [a for a in history.acked if a[1] != b"%08d" % 7]
        violations = check_invariants(history, HTable(cluster, "c"))
        assert any("phantom" in v for v in violations)

    def test_scan_duplication_is_detected(self):
        cluster, history = self.fixture()
        row = b"%08d" % 2
        value = b"seed-%06d" % 2
        history.scans.append(
            ScanObservation(
                history.next_seq(), history.next_seq(),
                b"", None, [(row, value), (row, value)],
            )
        )
        violations = check_invariants(history, HTable(cluster, "c"))
        assert any("out of order / duplicated" in v for v in violations)

    def test_scan_loss_is_detected(self):
        cluster, history = self.fixture()
        # a scan started after every ack but delivered only half the rows
        rows = [
            (b"%08d" % i, b"seed-%06d" % i) for i in range(0, 10, 2)
        ]
        history.scans.append(
            ScanObservation(
                history.next_seq(), history.next_seq(), b"", None, rows
            )
        )
        violations = check_invariants(history, HTable(cluster, "c"))
        assert any("was not delivered" in v for v in violations)

    def test_unacked_scan_value_is_detected(self):
        cluster, history = self.fixture()
        history.scans.append(
            ScanObservation(
                history.next_seq(), history.next_seq(),
                b"", b"%08d" % 1, [(b"%08d" % 0, b"forged")],
            )
        )
        violations = check_invariants(history, HTable(cluster, "c"))
        assert any("never acked before the scan ended" in v for v in violations)

    def test_value_acked_only_after_the_scan_is_detected(self):
        """end_seq bounds the value check: a delivered value whose only
        ack lands after the scan finished cannot have been read by it."""
        cluster, history = self.fixture()
        scan_rows = [(b"%08d" % 0, b"late")]
        start, end = history.next_seq(), history.next_seq()
        history.scans.append(ScanObservation(start, end, b"", b"%08d" % 1, scan_rows))
        history.record_ack(b"%08d" % 0, b"late")  # acked after end_seq
        violations = check_invariants(history, HTable(cluster, "c"))
        assert any("never acked before the scan ended" in v for v in violations)
