"""Heap ready-queue equivalence and scale tests.

The ``DeterministicScheduler`` grew an O(log n) heap-based ready queue
(``ready_queue="heap"``, the default) to drive 10k+ virtual clients;
the original O(n) min-scan survives as ``ready_queue="scan"``, the
executable specification. These tests pin the heap to the scan
step-for-step: identical resume traces (including virtual-timestamp
ties, which must break by registration order), identical side-effect
logs, identical reports — across seeded multi-client workloads — and a
10k-client smoke that must finish well inside the CI budget.
"""

from __future__ import annotations

import random
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.clock import Simulation
from repro.sim.scheduler import DeterministicScheduler


def drive(ready_queue: str, plans, daemons=(), seed: int = 7):
    """Run one schedule: client i advances its clock by ``plans[i]``'s
    deltas, one yield per delta, logging every resume. Daemons (by
    index) never finish on their own."""
    sim = Simulation(seed=seed)
    scheduler = DeterministicScheduler(sim, ready_queue=ready_queue)
    log: list[tuple[int, float]] = []
    for i, plan in enumerate(plans):
        if i in daemons:

            def program(vc, plan=plan, i=i):
                while True:
                    for delta in plan:
                        yield "tick"
                        vc.clock.advance(delta)
                        log.append((i, vc.clock.now_ms))
                    if not plan:
                        yield "tick"
                        vc.clock.advance(1.0)

        else:

            def program(vc, plan=plan, i=i):
                for delta in plan:
                    yield "step"
                    vc.clock.advance(delta)
                    log.append((i, vc.clock.now_ms))
                    vc.stats.committed += 1

        scheduler.add_client(f"c{i}", program, daemon=i in daemons)
    report = scheduler.run()
    return scheduler.trace, log, report


def assert_equivalent(plans, daemons=()):
    heap_trace, heap_log, heap_report = drive("heap", plans, daemons)
    scan_trace, scan_log, scan_report = drive("scan", plans, daemons)
    assert heap_trace == scan_trace
    assert heap_log == scan_log
    assert heap_report.makespan_ms == scan_report.makespan_ms
    assert heap_report.committed == scan_report.committed
    assert heap_report.clients == scan_report.clients


class TestHeapScanEquivalence:
    def test_all_ties_break_by_registration_order(self):
        # every client charges the same deltas: every resume decision is
        # a virtual-timestamp tie and must break by client_id
        assert_equivalent([[1.0, 1.0, 1.0]] * 5)

    def test_zero_cost_segments(self):
        # zero charges keep the client at the same timestamp: it must
        # keep winning ties against higher-id clients until it charges
        assert_equivalent([[0.0, 0.0, 2.0], [1.0, 0.0], [0.0, 3.0]])

    def test_staggered_costs(self):
        assert_equivalent([[3.0], [1.0, 1.0, 1.0], [2.0, 2.0]])

    def test_uneven_client_lengths(self):
        assert_equivalent([[1.0] * 8, [], [5.0], [0.5] * 3])

    def test_single_client(self):
        assert_equivalent([[1.0, 2.0, 3.0]])

    def test_no_clients(self):
        assert_equivalent([])

    def test_daemon_wound_down_in_registration_order(self):
        # daemon (index 1) never finishes; both drivers must close it
        # after the workers drain, without it affecting the makespan
        assert_equivalent([[1.0, 1.0], [0.5], [2.0]], daemons={1})

    def test_only_daemons(self):
        assert_equivalent([[1.0]], daemons={0})

    @given(
        st.lists(
            st.lists(
                # a tiny delta alphabet makes cross-client ties common
                st.sampled_from([0.0, 0.5, 1.0, 1.5]),
                max_size=6,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_heap_matches_scan(self, plans):
        assert_equivalent(plans)

    def test_seeded_random_workloads(self):
        for seed in range(10):
            rng = random.Random(seed)
            plans = [
                [
                    rng.choice([0.0, 0.25, 0.25, 1.0, 2.0])
                    for _ in range(rng.randint(0, 12))
                ]
                for _ in range(rng.randint(1, 20))
            ]
            daemons = {
                i for i in range(len(plans)) if rng.random() < 0.15
            }
            if daemons == set(range(len(plans))):
                daemons.pop()
            assert_equivalent(plans, daemons)

    def test_trace_is_bit_identical_across_reruns(self):
        plans = [[1.0, 0.5, 0.5], [2.0], [0.5] * 4]
        first = drive("heap", plans)
        second = drive("heap", plans)
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_invalid_ready_queue_rejected(self):
        with pytest.raises(ValueError, match="ready_queue"):
            DeterministicScheduler(Simulation(seed=1), ready_queue="btree")


class TestHeapAtScale:
    def test_10k_clients_smoke(self):
        # the tentpole scale target: 10k+ virtual clients through the
        # heap driver, well inside the tier-1 wall-clock budget
        clients = 10_000
        sim = Simulation(seed=11)
        scheduler = DeterministicScheduler(sim)
        for i in range(clients):

            def program(vc, i=i):
                for step in range(3):
                    yield "op"
                    vc.clock.advance(0.1 + (i % 7) * 0.05)
                    vc.stats.committed += 1

            scheduler.add_client(f"c{i}", program)
        t0 = time.perf_counter()
        report = scheduler.run()
        elapsed = time.perf_counter() - t0
        assert report.committed == 3 * clients
        assert len(scheduler.trace) == 4 * clients  # 3 charges + final resume
        assert elapsed < 30.0
