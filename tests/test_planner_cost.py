"""Cost model + cost-based planner: monotonicity laws, access-path
preference, pinned TPC-W join orders, and explain() snapshots.

The TPC-W catalog here carries hand-set row statistics (no data is
loaded), so every estimate is pure arithmetic and the pinned plans are
deterministic.
"""

from __future__ import annotations

import re

import pytest

from repro.config import DEFAULT_COST_MODEL, ClusterConfig
from repro.hbase.client import HBaseClient
from repro.hbase.cluster import HBaseCluster
from repro.phoenix.ddl import create_baseline_schema
from repro.phoenix.planner import CostBasedPlanner, Planner
from repro.phoenix.stats import AccessCoster, TableStats, matched_rows
from repro.relational.company import company_schema
from repro.sim.clock import Simulation
from repro.sql.parser import parse_statement
from repro.tpcw.queries import JOIN_QUERIES
from repro.tpcw.schema import tpcw_schema

TPCW_ROWS = {
    "Country": 92, "Address": 400, "Customer": 200, "Author": 50,
    "Item": 2000, "Orders": 2000, "Order_line": 6000, "CC_Xacts": 2000,
    "Shopping_cart": 40, "Shopping_cart_line": 120,
}


def _stats(rows: int, regions: int = 1, row_bytes: int = 150) -> TableStats:
    return TableStats("T", rows, rows * row_bytes, regions)


# ------------------------------------------------------------ cost model laws
def test_matched_rows_monotone_in_rows_and_prefix():
    # more rows => more matches, at every prefix length
    for prefix in (0, 1, 2):
        assert matched_rows(10_000, prefix, 3) > matched_rows(100, prefix, 3)
    # longer prefix => fewer matches
    assert (
        matched_rows(10_000, 0, 3)
        > matched_rows(10_000, 1, 3)
        > matched_rows(10_000, 2, 3)
        > matched_rows(10_000, 3, 3)
    )
    # full-key prefix is a point access; empty table matches nothing
    assert matched_rows(10_000, 3, 3) == 1.0
    assert matched_rows(0, 1, 3) == 0.0


def test_scan_cost_monotone_in_rows():
    coster = AccessCoster(DEFAULT_COST_MODEL)
    for prefix in (0, 1):
        costs = [
            coster.scan_ms(_stats(rows), prefix_len=prefix, key_len=2)
            for rows in (100, 10_000, 1_000_000)
        ]
        assert costs == sorted(costs) and costs[0] < costs[-1]


def test_access_cost_monotone_and_lookup_surcharge():
    coster = AccessCoster(DEFAULT_COST_MODEL)
    small = coster.access_ms(_stats(100), 1, 2)
    big = coster.access_ms(_stats(10_000), 1, 2)
    assert big[0] > small[0] and big[1] > small[1]
    # a non-covered index pays one base point get per matched row
    covered = coster.access_ms(_stats(10_000), 1, 2)
    uncovered = coster.access_ms(_stats(10_000), 1, 2, lookup_stats=_stats(10_000))
    assert uncovered[1] > covered[1]


def test_full_scan_pays_every_region():
    coster = AccessCoster(DEFAULT_COST_MODEL)
    assert coster.scan_ms(_stats(1000, regions=8), 0, 2) > coster.scan_ms(
        _stats(1000, regions=1), 0, 2
    )
    # a prefix scan opens a single region window either way
    assert coster.scan_ms(_stats(1000, regions=8), 1, 2) == coster.scan_ms(
        _stats(1000, regions=1), 1, 2
    )


# ------------------------------------------------------------ planner choices
@pytest.fixture
def tpcw_cbo():
    sim = Simulation(seed=42)
    client = HBaseClient(HBaseCluster(sim, ClusterConfig()))
    catalog = create_baseline_schema(client, tpcw_schema())
    for entry in catalog.entries():
        base = entry.name.split(".")[0]
        if base in TPCW_ROWS:
            catalog.stats[entry.name] = TPCW_ROWS[base]
    return (
        CostBasedPlanner(catalog, cluster=client.cluster),
        Planner(catalog),
    )


def test_covered_index_preferred_when_cheaper(company_conn):
    """With measured statistics, the coster prices the covered
    idx_wo_hours prefix scan below a base full scan, and the cost-based
    planner picks it."""
    catalog = company_conn.catalog
    cluster = company_conn.client.cluster
    planner = CostBasedPlanner(catalog, cluster=cluster)
    planned = planner.plan_select(parse_statement(
        "SELECT wo.WO_EID, wo.WO_PNo FROM Works_On as wo WHERE wo.Hours = ?"
    ))
    assert "idx_wo_hours" in planned.root.describe()

    provider = planner.provider
    coster = planner._coster()
    base = catalog.table_for_relation("Works_On")
    index = next(e for e in catalog.entries() if e.name.endswith("idx_wo_hours"))
    _, index_ms = coster.access_ms(
        provider.stats_for(index), 1, len(index.key_attrs)
    )
    _, base_ms = coster.access_ms(
        provider.stats_for(base), 0, len(base.key_attrs)
    )
    assert index_ms < base_ms


def test_join_orders_pinned_per_tpcw_query(tpcw_cbo):
    """The cost-based join order for every TPC-W query, pinned. A cost
    model change that reorders any of these must be deliberate."""
    planner, _legacy = tpcw_cbo
    pat = re.compile(r" as (\w+)")
    pinned = {
        "Q1": ("i", "ol"),
        "Q2": ("o", "c"),
        "Q3": ("co", "a", "c"),
        "Q4": ("a", "i"),
        "Q5": ("a", "i"),
        "Q6": ("a", "i"),
        "Q7": ("bill_co", "bill_addr", "ship_co", "ship_addr", "c", "o"),
        "Q8": ("i", "scl"),
        "Q9": ("j", "i"),
        "Q10": ("ol", "a", "i", "tmp", "Orders"),
        "Q11": ("ol2", "ol", "tmp", "Orders"),
    }
    got = {
        qid: tuple(pat.findall(
            planner.plan_select(parse_statement(sql)).root.describe()
        ))
        for qid, sql in JOIN_QUERIES.items()
    }
    assert got == pinned


def test_explain_snapshots(tpcw_cbo):
    planner, legacy = tpcw_cbo
    q1 = planner.plan_select(parse_statement(JOIN_QUERIES["Q1"])).root.describe()
    assert q1 == (
        "NL JOIN -> Item as i on (('ol', 'ol_i_id'),)"
        "  -- est rows=77 cost=67.645ms\n"
        "  PREFIX SCAN Order_line [table] as ol prefix=('ol_o_id',)"
        "  -- est rows=77 cost=1.358ms"
    )
    q3 = planner.plan_select(parse_statement(JOIN_QUERIES["Q3"])).root.describe()
    assert q3 == (
        "NL JOIN -> Country as co on (('a', 'addr_co_id'),)"
        "  -- est rows=14 cost=25.147ms\n"
        "  NL JOIN -> Address as a on (('c', 'c_addr_id'),)"
        "  -- est rows=14 cost=13.045ms\n"
        "    PREFIX SCAN Customer.idx_c_uname [index] as c prefix=('c_uname',)"
        "  -- est rows=14 cost=0.943ms"
    )
    # the legacy planner's explain output carries no cost annotations —
    # the anchored plan shapes (and their rendering) never move
    for qid in ("Q1", "Q3", "Q10"):
        text = legacy.plan_select(parse_statement(JOIN_QUERIES[qid])).root.describe()
        assert "est rows" not in text


def test_cost_estimates_annotate_every_node(tpcw_cbo):
    planner, _legacy = tpcw_cbo
    planned = planner.plan_select(parse_statement(JOIN_QUERIES["Q10"]))
    text = planned.root.describe()
    assert all("est rows=" in line for line in text.splitlines())


def test_legacy_schema_only_planner_matches_company_shapes(company_conn):
    """The refactored hook methods (_binding_order/_choose_next) leave
    the legacy planner's company workload plans untouched."""
    legacy = Planner(company_conn.catalog)
    planned = legacy.plan_select(parse_statement(
        "SELECT * FROM Department as d, Employee as e, Works_On as wo "
        "WHERE d.DNo = e.E_DNo and e.EID = wo.WO_EID and d.DNo = ?"
    ))
    text = planned.root.describe()
    assert text.splitlines()[0].startswith("NL JOIN")
    assert "est rows" not in text
