"""SQL front-end tests: lexer, parser, printer, analyzer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SqlError, SqlSyntaxError
from repro.relational.company import company_schema
from repro.sql.analyzer import analyze_select, matches_fk_edge
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    Delete,
    DerivedTable,
    FuncCall,
    Insert,
    Literal,
    Param,
    Select,
    Star,
    TableRef,
    Update,
    count_params,
)
from repro.sql.lexer import TokType, tokenize
from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("SELECT a.b, 'x''y', 1.5, ? FROM t")
        kinds = [t.type for t in toks]
        assert kinds[0] is TokType.KEYWORD
        assert TokType.PARAM in kinds
        strings = [t.text for t in toks if t.type is TokType.STRING]
        assert strings == ["x'y"]

    def test_operators(self):
        toks = tokenize("a <> b <= c >= d < e > f = g")
        ops = [t.text for t in toks if t.type is TokType.OP]
        assert ops == ["<>", "<=", ">=", "<", ">", "="]

    def test_negative_number(self):
        toks = tokenize("SELECT -5")
        nums = [t.text for t in toks if t.type is TokType.NUMBER]
        assert nums == ["-5"]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops")

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT a; DROP TABLE")

    def test_qualified_name_not_float(self):
        toks = tokenize("t1.c2")
        assert [t.text for t in toks[:-1]] == ["t1", ".", "c2"]


class TestParser:
    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM Employee")
        assert isinstance(stmt, Select)
        assert stmt.projections == (Star(),)

    def test_aliases_with_and_without_as(self):
        a = parse_statement("SELECT * FROM Employee as e")
        b = parse_statement("SELECT * FROM Employee e")
        assert a.from_items[0].alias == b.from_items[0].alias == "e"

    def test_where_conjunction(self):
        stmt = parse_statement(
            "SELECT * FROM T as a, U as b WHERE a.x = b.y and a.z = ? and b.w >= 5"
        )
        assert len(stmt.where) == 3
        assert stmt.where[2].op == ">="

    def test_order_group_limit_distinct(self):
        stmt = parse_statement(
            "SELECT DISTINCT a, SUM(b) FROM T GROUP BY a "
            "ORDER BY SUM(b) DESC, a ASC LIMIT 7"
        )
        assert stmt.distinct
        assert stmt.limit == 7
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.group_by == (ColumnRef("a"),)

    def test_derived_table(self):
        stmt = parse_statement(
            "SELECT * FROM (SELECT o_id FROM Orders LIMIT 3) as tmp, T as t "
            "WHERE t.x = tmp.o_id"
        )
        assert isinstance(stmt.from_items[0], DerivedTable)
        assert stmt.from_items[0].alias == "tmp"
        assert stmt.from_items[0].select.limit == 3

    def test_count_star(self):
        stmt = parse_statement("SELECT COUNT(*) FROM T")
        f = stmt.projections[0]
        assert isinstance(f, FuncCall) and f.star and f.name == "COUNT"

    def test_insert(self):
        stmt = parse_statement("INSERT INTO T (a, b) VALUES (?, 'x')")
        assert isinstance(stmt, Insert)
        assert stmt.columns == ("a", "b")
        assert isinstance(stmt.values[0], Param)
        assert stmt.values[1] == Literal("x")

    def test_update(self):
        stmt = parse_statement("UPDATE T SET a = ?, b = 2 WHERE k = ?")
        assert isinstance(stmt, Update)
        assert [c for c, _ in stmt.assignments] == ["a", "b"]
        assert len(stmt.where) == 1

    def test_delete(self):
        stmt = parse_statement("DELETE FROM T WHERE k = ? and k2 = ?")
        assert isinstance(stmt, Delete)
        assert len(stmt.where) == 2

    def test_param_indices_in_order(self):
        stmt = parse_statement("SELECT * FROM T WHERE a = ? and b = ? and c = ?")
        indices = [c.right.index for c in stmt.where]
        assert indices == [0, 1, 2]
        assert count_params(stmt) == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT * FROM T garbage , extra ,")

    def test_empty_statement_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("EXPLAIN SELECT 1")

    def test_star_qualified(self):
        stmt = parse_statement("SELECT j.* FROM Item as j")
        assert stmt.projections == (Star(qualifier="j"),)


class TestPrinterRoundtrip:
    CASES = [
        "SELECT * FROM Employee as e, Address as a WHERE a.AID = e.EHome_AID and e.EID = ?",
        "SELECT a, SUM(b) FROM T GROUP BY a ORDER BY SUM(b) DESC LIMIT 5",
        "SELECT DISTINCT x FROM T WHERE y <> 'a''b'",
        "INSERT INTO T (a, b) VALUES (?, 3.5)",
        "UPDATE T SET a = ? WHERE k = ? and k2 = 'z'",
        "DELETE FROM T WHERE k = ?",
        "SELECT * FROM (SELECT o_id FROM Orders ORDER BY o_date DESC LIMIT 10) as tmp",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_parse_print_parse_fixpoint(self, sql):
        first = parse_statement(sql)
        assert parse_statement(to_sql(first)) == first


class TestAnalyzer:
    def setup_method(self):
        self.schema = company_schema()

    def test_join_and_filter_classification(self):
        stmt = parse_statement(
            "SELECT * FROM Department as d, Employee as e "
            "WHERE d.DNo = e.E_DNo and d.DNo = ?"
        )
        a = analyze_select(stmt, self.schema)
        assert len(a.joins) == 1 and len(a.filters) == 1
        j = a.joins[0]
        assert {j.left_relation, j.right_relation} == {"Department", "Employee"}
        assert a.is_equi_join_query()

    def test_unqualified_column_resolution(self):
        stmt = parse_statement(
            "SELECT EName FROM Employee as e, Address as a "
            "WHERE a.AID = e.EHome_AID and Zip = ?"
        )
        a = analyze_select(stmt, self.schema)
        assert a.filters[0].relation == "Address"

    def test_ambiguous_unqualified_rejected(self):
        stmt = parse_statement(
            "SELECT * FROM Employee as e, Employee as f WHERE EName = ?"
        )
        with pytest.raises(SqlError):
            analyze_select(stmt, self.schema)

    def test_unknown_alias_rejected(self):
        stmt = parse_statement("SELECT * FROM Employee as e WHERE zz.EID = ?")
        with pytest.raises(SqlError):
            analyze_select(stmt, self.schema)

    def test_duplicate_binding_rejected(self):
        stmt = parse_statement("SELECT * FROM Employee as e, Address as e")
        with pytest.raises(SqlError):
            analyze_select(stmt, self.schema)

    def test_self_join_detection(self):
        stmt = parse_statement(
            "SELECT * FROM Employee as a, Employee as b WHERE a.EID = b.EID"
        )
        assert stmt.uses_relation_twice()

    def test_same_binding_condition_is_filter(self):
        stmt = parse_statement(
            "SELECT * FROM Employee as e WHERE e.EHome_AID = e.EOffice_AID"
        )
        a = analyze_select(stmt, self.schema)
        assert not a.joins and len(a.filters) == 1

    def test_matches_fk_edge(self):
        stmt = parse_statement(
            "SELECT * FROM Employee as e, Address as a WHERE a.AID = e.EHome_AID"
        )
        a = analyze_select(stmt, self.schema)
        emp = self.schema.relation("Employee")
        home = emp.foreign_key("emp_home_addr")
        office = emp.foreign_key("emp_office_addr")
        assert matches_fk_edge(self.schema, "Address", "Employee", home, a.joins)
        assert not matches_fk_edge(self.schema, "Address", "Employee", office, a.joins)

    def test_theta_join_captured(self):
        stmt = parse_statement(
            "SELECT * FROM Works_On as x, Works_On as y WHERE x.Hours <> y.Hours"
        )
        a = analyze_select(stmt, self.schema)
        assert a.joins[0].op == "<>"
        assert not a.is_equi_join_query()

    def test_flipped_filter_operand(self):
        stmt = parse_statement("SELECT * FROM Works_On as w WHERE 10 < w.Hours")
        a = analyze_select(stmt, self.schema)
        assert a.filters[0].op == ">"
