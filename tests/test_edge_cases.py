"""Edge cases and failure injection across layers."""

import pytest

from repro.errors import (
    PlanError,
    ReproError,
    SchemaError,
    TransactionError,
    WorkloadError,
)
from repro.hbase.ops import Get, Put, Scan
from repro.phoenix.catalog import CF
from repro.relational.company import company_schema
from repro.sql.parser import parse_statement


class TestPhoenixEdges:
    def test_unbound_parameter_raises(self, company_conn):
        with pytest.raises(PlanError):
            company_conn.execute_query(
                "SELECT * FROM Employee WHERE EID = ?", ()
            )

    def test_query_on_unknown_relation(self, company_conn):
        with pytest.raises(SchemaError):
            company_conn.execute_query("SELECT * FROM Nope")

    def test_insert_unknown_attribute(self, company_conn):
        with pytest.raises((SchemaError, WorkloadError)):
            company_conn.execute_write(
                "INSERT INTO Employee (EID, Bogus) VALUES (?, ?)", (1, 2)
            )

    def test_insert_arity_mismatch(self, company_conn):
        with pytest.raises(WorkloadError):
            company_conn.execute_write(
                "INSERT INTO Department (DNo, DName) VALUES (?)", (1,)
            )

    def test_plan_cache_hit(self, company_conn):
        sql = "SELECT * FROM Employee WHERE EID = ?"
        assert company_conn.plan(sql) is company_conn.plan(sql)

    def test_empty_table_scan(self, company_conn):
        assert company_conn.execute_query("SELECT * FROM Dependent "
                                          "WHERE DP_EID = ?", (999,)) == []

    def test_null_fk_join_produces_no_row(self, company_conn):
        company_conn.execute_write(
            "INSERT INTO Employee (EID, EName) VALUES (?, ?)", (77, "nofk")
        )
        rows = company_conn.execute_query(
            "SELECT * FROM Employee as e, Address as a "
            "WHERE a.AID = e.EHome_AID and e.EID = ?", (77,)
        )
        assert rows == []

    def test_order_by_with_nulls(self, company_conn):
        company_conn.execute_write(
            "INSERT INTO Address (AID, City) VALUES (?, ?)", (80, None)
        )
        rows = company_conn.execute_query(
            "SELECT AID, City FROM Address ORDER BY City DESC"
        )
        assert rows[-1]["City"] is None  # NULLs last under DESC


class TestSynergyEdges:
    def test_write_to_view_rejected(self, company_synergy):
        with pytest.raises((SchemaError, ReproError)):
            company_synergy.execute(
                "INSERT INTO MV_Address__Employee (EID) VALUES (?)", (1,)
            )

    def test_no_live_slaves(self, company_synergy):
        for slave in company_synergy.txlayer.slaves:
            slave.crash()
        with pytest.raises(TransactionError):
            company_synergy.execute(
                "INSERT INTO Address (AID) VALUES (?)", (999,)
            )

    def test_insert_duplicate_key_overwrites(self, company_synergy):
        """HBase semantics: a Put on an existing row key overwrites (no
        uniqueness enforcement, matching the paper's store)."""
        company_synergy.execute(
            "INSERT INTO Department (DNo, DName) VALUES (?, ?)", (1, "redef")
        )
        rows = company_synergy.execute(
            "SELECT DName FROM Department WHERE DNo = ?", (1,)
        )
        assert rows == [{"DName": "redef"}]

    def test_update_view_row_count_bounded(self, company_synergy):
        """An update of Employee touches exactly the view rows carrying
        that employee, not the whole view."""
        sim = company_synergy.sim
        before = {
            k: v for k, v in sim.metrics.counters().items()
            if ".rows_written" in k
        }
        company_synergy.execute(
            "UPDATE Employee SET EName = ? WHERE EID = ?", ("bounded", 4)
        )
        written = sum(
            v - before.get(k, 0)
            for k, v in sim.metrics.counters().items()
            if ".rows_written" in k
        )
        # base + idx rows + ~3 WO view rows x (mark, write, unmark) + A-E view
        assert written < 40


class TestHBaseEdges:
    def test_scan_empty_range(self, client):
        t = client.create_table("empty")
        assert t.scan_all(Scan(start_row=b"a", stop_row=b"b")) == []

    def test_get_after_delete_before_compaction(self, client):
        from repro.hbase.ops import Delete as HDelete

        t = client.create_table("dd")
        p = Put(b"k")
        p.add(CF, b"v", b"1")
        t.put(p)
        for region in client.cluster.descriptor("dd").regions:
            region.flush()
        t.delete(HDelete(b"k"))
        assert t.get(Get(b"k")) is None  # tombstone wins over flushed cell

    def test_versions_readable_with_max_versions(self, client):
        t = client.create_table("mv", max_versions=3)
        for i in range(4):
            p = Put(b"k")
            p.add(CF, b"v", f"v{i}".encode())
            t.put(p)
        result = t.get(Get(b"k", max_versions=3))
        versions = [v for _, v in result.versions(CF, b"v")]
        assert versions == [b"v3", b"v2", b"v1"]

    def test_parser_rejects_view_name_with_dash(self):
        """Physical view names avoid '-' precisely because it is not a
        SQL identifier character; MV_A__B parses, A-B does not."""
        parse_statement("SELECT * FROM MV_Address__Employee")
        from repro.errors import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT * FROM Address-Employee")
