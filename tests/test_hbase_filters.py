"""Server-side scan filters: predicate semantics on Result rows, and
their interaction with the streaming ``RegionScanner`` — in particular
with column pushdown, where the filter only sees the cells the
projection kept (so callers must project the columns they filter on,
which is exactly what Phoenix's ``AccessSpec`` does)."""

import pytest

from repro.hbase import HBaseClient, HBaseCluster, Put, Scan
from repro.hbase.cell import Result
from repro.hbase.filters import (
    AndFilter,
    ColumnValueFilter,
    PrefixFilter,
    RowRangeFilter,
)
from repro.hbase.ops import Delete

CF = b"cf"


def make_result(row=b"r1", **cols) -> Result:
    result = Result(row)
    for q, v in cols.items():
        result.add(CF, q.encode(), 1, v)
    return result


class TestColumnValueFilter:
    @pytest.mark.parametrize("op,value,expected", [
        ("=", b"m", True), ("=", b"x", False),
        ("<>", b"x", True), ("<>", b"m", False),
        ("<", b"n", True), ("<", b"m", False),
        ("<=", b"m", True), ("<=", b"l", False),
        (">", b"l", True), (">", b"m", False),
        (">=", b"m", True), (">=", b"n", False),
    ])
    def test_all_comparison_ops(self, op, value, expected):
        f = ColumnValueFilter(CF, b"a", op, value)
        assert f.accept(make_result(a=b"m")) is expected

    def test_missing_column_rejected_by_default(self):
        f = ColumnValueFilter(CF, b"nope", "=", b"x")
        assert not f.accept(make_result(a=b"m"))

    def test_missing_accepts_mirrors_hbase_filter_if_missing(self):
        f = ColumnValueFilter(CF, b"nope", "=", b"x", missing_accepts=True)
        assert f.accept(make_result(a=b"m"))

    def test_compares_newest_version_only(self):
        result = make_result()
        result.add(CF, b"a", 1, b"old")
        result.add(CF, b"a", 5, b"new")
        assert ColumnValueFilter(CF, b"a", "=", b"new").accept(result)
        assert not ColumnValueFilter(CF, b"a", "=", b"old").accept(result)


class TestRowFilters:
    def test_prefix_filter(self):
        f = PrefixFilter(b"ab")
        assert f.accept(make_result(row=b"abc"))
        assert not f.accept(make_result(row=b"ba"))

    def test_row_range_start_inclusive_stop_exclusive(self):
        f = RowRangeFilter(start=b"b", stop=b"d")
        assert not f.accept(make_result(row=b"a"))
        assert f.accept(make_result(row=b"b"))
        assert f.accept(make_result(row=b"c"))
        assert not f.accept(make_result(row=b"d"))

    def test_row_range_open_bounds(self):
        assert RowRangeFilter().accept(make_result(row=b"x"))
        assert RowRangeFilter(start=b"b").accept(make_result(row=b"z"))
        assert not RowRangeFilter(stop=b"b").accept(make_result(row=b"z"))

    def test_and_filter_is_conjunction(self):
        f = AndFilter((
            PrefixFilter(b"a"),
            ColumnValueFilter(CF, b"a", "=", b"v"),
        ))
        assert f.accept(make_result(row=b"ax", a=b"v"))
        assert not f.accept(make_result(row=b"bx", a=b"v"))
        assert not f.accept(make_result(row=b"ax", a=b"w"))


@pytest.fixture
def table(client):
    t = client.create_table("ft", families=(CF,), split_keys=[b"m"])
    for key, grade, size in [
        (b"a1", b"g1", b"s1"), (b"b2", b"g2", b"s2"),
        (b"m1", b"g1", b"s3"), (b"z9", b"g2", b"s1"),
    ]:
        p = Put(key)
        p.add(CF, b"grade", grade)
        p.add(CF, b"size", size)
        t.put(p)
    return t


def scanned_keys(table, scan):
    return [r.row for r in table.scan(scan)]


class TestScanIntegration:
    def test_filter_selects_rows_across_regions(self, table):
        scan = Scan()
        scan.filter = ColumnValueFilter(CF, b"grade", "=", b"g1")
        # a1 is below the m split, m1 above: the filter spans regions
        assert scanned_keys(table, scan) == [b"a1", b"m1"]

    def test_prefix_filter_on_scan(self, table):
        scan = Scan()
        scan.filter = PrefixFilter(b"b")
        assert scanned_keys(table, scan) == [b"b2"]

    def test_and_filter_on_scan(self, table):
        scan = Scan()
        scan.filter = AndFilter((
            ColumnValueFilter(CF, b"grade", "=", b"g2"),
            RowRangeFilter(stop=b"m"),
        ))
        assert scanned_keys(table, scan) == [b"b2"]

    def test_filter_sees_column_kept_by_pushdown(self, table):
        """Projection includes the filtered column: the filter works and
        the emitted rows carry only the projected cells."""
        scan = Scan()
        scan.columns = [(CF, b"grade")]
        scan.filter = ColumnValueFilter(CF, b"grade", "=", b"g2")
        rows = list(table.scan(scan))
        assert [r.row for r in rows] == [b"b2", b"z9"]
        assert all(r.columns() == [(CF, b"grade")] for r in rows)

    def test_filter_on_column_projected_away_sees_missing(self, table):
        """The scanner merges only the pushed-down columns, so a filter
        on a projected-away column observes the column as missing —
        ``missing_accepts`` then decides, exactly as for a row that
        never had the column. Callers must project what they filter on
        (Phoenix's ``AccessSpec`` projections always include residual
        predicate attrs because entries project their full column set).
        """
        scan = Scan()
        scan.columns = [(CF, b"size")]
        scan.filter = ColumnValueFilter(CF, b"grade", "=", b"g1")
        assert scanned_keys(table, scan) == []
        scan = Scan()
        scan.columns = [(CF, b"size")]
        scan.filter = ColumnValueFilter(
            CF, b"grade", "=", b"g1", missing_accepts=True
        )
        assert scanned_keys(table, scan) == [b"a1", b"b2", b"m1", b"z9"]

    def test_filter_after_column_tombstone(self, table):
        table.delete(Delete(b"b2", columns=[(CF, b"grade")]))
        scan = Scan()
        scan.filter = ColumnValueFilter(CF, b"grade", "=", b"g2")
        assert scanned_keys(table, scan) == [b"z9"]

    def test_filter_never_sees_deleted_rows(self, table):
        table.delete(Delete(b"z9"))
        scan = Scan()
        scan.filter = ColumnValueFilter(
            CF, b"grade", "=", b"g2", missing_accepts=True
        )
        assert scanned_keys(table, scan) == [b"b2"]

    def test_filter_against_merged_memstore_and_hfile(self, cluster, table):
        """The newest version wins across the flush boundary: an HFile
        value overwritten in the memstore must not satisfy the filter."""
        for region in cluster.descriptor("ft").regions:
            region.flush()
        p = Put(b"a1")
        p.add(CF, b"grade", b"g9")
        table.put(p)
        scan = Scan()
        scan.filter = ColumnValueFilter(CF, b"grade", "=", b"g1")
        assert scanned_keys(table, scan) == [b"m1"]
        scan = Scan()
        scan.filter = ColumnValueFilter(CF, b"grade", "=", b"g9")
        assert scanned_keys(table, scan) == [b"a1"]

    def test_filtered_rows_still_charge_server_reads(self, sim, table):
        """Filtering happens after the per-row read work: a scan whose
        filter drops every row costs more than an empty-range scan but
        less than one that also transfers the rows."""
        def elapsed(scan):
            start = sim.clock.now_ms
            list(table.scan(scan))
            return sim.clock.now_ms - start

        drop_all = Scan()
        drop_all.filter = ColumnValueFilter(CF, b"grade", "=", b"none")
        keep_all = Scan()
        empty_range = Scan(start_row=b"zzz")
        assert elapsed(empty_range) < elapsed(drop_all) < elapsed(keep_all)
