"""Orchestration under chaos: rollouts interleaved with the fault
injector, crash-racing steps, and deterministic reruns."""

from __future__ import annotations

import json

from repro.bench.experiments import (
    orchestration_rollback_smoke,
    orchestration_smoke,
    run_orchestration_cell,
)
from repro.config import ClusterConfig, ReplicationConfig
from repro.hbase.client import HBaseClient
from repro.hbase.cluster import HBaseCluster
from repro.hbase.ops import Put
from repro.hbase.replication import ReplicationShipper
from repro.orchestration import (
    AddServers,
    MoveRegion,
    Orchestrator,
    PoisonStep,
    RolloutPolicy,
    SplitRegion,
    cluster_snapshot,
    verify_cluster,
)
from repro.sim.clock import Simulation
from repro.sim.faults import FaultConfig, FaultInjector, ChaosHistory
from repro.sim.scheduler import DeterministicScheduler

FAM = b"cf"


def build_cluster(servers=2, replication=None, rows=40, splits=None):
    sim = Simulation(seed=42)
    config = ClusterConfig(num_region_servers=servers, seed=42)
    if replication is not None:
        config = ClusterConfig(
            num_region_servers=servers, seed=42, replication=replication,
        )
    cluster = HBaseCluster(sim, config)
    client = HBaseClient(cluster)
    table = client.create_table("t", families=(FAM,), split_keys=splits)
    for i in range(rows):
        table.put(Put(b"%05d" % i).add(FAM, b"q", b"v%05d" % i))
    cluster.sim.reset_clock()
    return cluster, client


def surgical_faulter(cluster, victim, t_crash, t_recover, t_restart=None):
    """A deterministic one-victim chaos daemon (crash -> master
    recovery -> optional process restart at fixed virtual times)."""

    def program(vc):
        vc.clock.advance(t_crash)
        yield "crash"
        victim.crash()
        vc.clock.advance(t_recover - t_crash)
        yield "recover"
        cluster.recover_server(victim)
        if t_restart is not None:
            vc.clock.advance(t_restart - t_recover)
            yield "restart"
            victim.restart()

    return program


class TestRolloutUnderChaos:
    def test_rollout_commits_through_crash_cycles(self):
        counters = orchestration_smoke()
        assert counters["rollout_committed"] == 1
        assert counters["stages_committed"] == counters["stages_total"] == 3
        assert counters["crashes"] >= 2
        assert counters["violations"] == 0
        assert counters["layout_issues"] == 0

    def test_chaos_rollout_rerun_is_byte_identical(self):
        def run():
            report, rollout, history, violations, fatal = (
                run_orchestration_cell(cycles=2)
            )
            return json.dumps({
                "rollout": rollout.as_dict(),
                "makespan_ms": report.makespan_ms,
                "committed": report.committed,
                "crashes": history.crash_count,
                "recoveries": history.recover_count,
                "violations": violations,
                "fatal": fatal,
            }, sort_keys=True)

        assert run() == run()

    def test_induced_rollback_restores_state(self):
        counters = orchestration_rollback_smoke()
        assert counters == {
            "rolled_back": 1,
            "stages_total": 1,
            "rows_intact": 1,
            "layout_intact": 1,
        }

    def test_scheduled_rollback_under_chaos_is_deterministic(self):
        """A poisoned stage racing real crash/recover cycles must still
        unwind its own effects — and reruns must agree byte-for-byte."""

        def run():
            cluster, _ = build_cluster(splits=[b"%05d" % 20])
            rows_before = cluster_snapshot(cluster)
            scheduler = DeterministicScheduler(cluster.sim)
            history = ChaosHistory()
            FaultInjector(
                cluster,
                FaultConfig(cycles=1, first_crash_ms=5.0, label="orch-test"),
                history,
            ).install(scheduler)
            orch = Orchestrator(cluster, stages=[
                ("1:doomed", [
                    AddServers(2),
                    SplitRegion("t", b"%05d" % 10),
                    PoisonStep(),
                ]),
            ], policy=RolloutPolicy(start_delay_ms=8.0))
            orch.install(scheduler)
            scheduler.run()
            for server in cluster.servers:
                if not server.alive and not server.recovered:
                    cluster.recover_server(server)
            assert orch.report.status == "rolled-back"
            # the stage's own effects are gone...
            assert len(cluster.servers) == 2
            assert len(cluster.tables["t"].regions) == 2
            # ...and no acked row went with them
            assert cluster_snapshot(cluster) == rows_before
            _transient, fatal = verify_cluster(cluster)
            assert fatal == []
            return json.dumps({
                "rollout": orch.report.as_dict(),
                "layout": cluster.layout_fingerprint(),
            }, sort_keys=True)

        assert run() == run()


class TestMoveRacingChaos:
    def test_move_retries_through_target_outage(self):
        """The move's target crashes before the rollout starts; the step
        must wait out recovery + restart and then land the region."""
        cluster, _ = build_cluster()
        region = cluster.tables["t"].regions[0]
        target = next(
            s for s in cluster.servers
            if s is not cluster.server_for(region)
        )
        scheduler = DeterministicScheduler(cluster.sim)
        scheduler.add_client(
            "faulter",
            surgical_faulter(
                cluster, target, t_crash=2.0, t_recover=20.0, t_restart=30.0
            ),
            daemon=True,
        )
        orch = Orchestrator(
            cluster,
            steps=[MoveRegion("t", region.start_key, target.name)],
            policy=RolloutPolicy(start_delay_ms=5.0, retry_backoff_ms=4.0),
        )
        orch.install(scheduler)
        scheduler.run()
        report = orch.report
        assert report.status == "committed"
        assert report.stages[0].attempts > 1  # the outage was observed
        moved = cluster.tables["t"].regions[0]
        assert moved.start_key == region.start_key
        assert cluster.server_for(moved) is target
        assert moved.row_count() == 40

    def test_move_racing_source_crash(self):
        """The region's host crashes mid-rollout; retry must chase the
        region onto its recovery host (a fresh incarnation under the
        same boundaries) and still complete the move."""
        cluster, _ = build_cluster(servers=3, splits=[b"%05d" % 20])
        region = cluster.tables["t"].regions[0]
        source = cluster.server_for(region)
        target = next(
            s for s in cluster.servers if s is not source
        )
        scheduler = DeterministicScheduler(cluster.sim)
        scheduler.add_client(
            "faulter",
            surgical_faulter(cluster, source, t_crash=2.0, t_recover=25.0),
            daemon=True,
        )
        orch = Orchestrator(
            cluster,
            steps=[MoveRegion("t", b"", target.name)],
            policy=RolloutPolicy(start_delay_ms=5.0, retry_backoff_ms=4.0),
        )
        orch.install(scheduler)
        scheduler.run()
        assert orch.report.status == "committed"
        landed = cluster.tables["t"].regions[0]
        assert cluster.server_for(landed) is target
        assert landed.row_count() == 20
        _transient, fatal = verify_cluster(cluster)
        assert fatal == []

    def test_move_racing_promotion(self):
        """Crash a replicated region's primary: recovery promotes its
        follower into a *renamed* primary under the same boundaries.
        A move addressed by (table, start_key) must resolve the promoted
        incarnation, and anti-affinity must hold afterwards."""
        cluster, client = build_cluster(
            servers=3,
            replication=ReplicationConfig(replica_count=2),
            rows=0,
        )
        client.create_table("r", families=(FAM,))
        cluster.replication.replicate_table("r")
        table = client.table("r")
        for i in range(20):
            table.put(Put(b"%05d" % i).add(FAM, b"q", b"x%05d" % i))
        cluster.sim.reset_clock()
        region = cluster.tables["r"].regions[0]
        original_name = region.name
        primary_host = cluster.server_for(region)

        scheduler = DeterministicScheduler(cluster.sim)
        ReplicationShipper(cluster.replication).install(scheduler)
        scheduler.add_client(
            "faulter",
            surgical_faulter(
                cluster, primary_host,
                t_crash=2.0, t_recover=8.0, t_restart=15.0,
            ),
            daemon=True,
        )
        # move the (about to be promoted) primary back onto the crashed
        # server once it has restarted empty
        orch = Orchestrator(
            cluster,
            steps=[MoveRegion("r", b"", primary_host.name)],
            policy=RolloutPolicy(start_delay_ms=20.0, retry_backoff_ms=4.0),
        )
        orch.install(scheduler)
        scheduler.run()
        assert orch.report.status == "committed"
        promoted = cluster.tables["r"].regions[0]
        assert promoted.name != original_name  # promotion renamed it
        assert cluster.server_for(promoted) is primary_host
        assert promoted.row_count() == 20
        group = cluster.replication.groups[promoted.name]
        assert len(group.live_followers()) == 1
        for follower in group.followers:
            assert follower.server is not primary_host  # anti-affinity
        _transient, fatal = verify_cluster(cluster)
        assert fatal == []
