"""Region splitting, rebalancing and the client relocation machinery:
mid-key splits with zero-copy inheritance, auto-split thresholds, the
split-vs-open-scan and split-vs-checkAndPut races, balancer policies,
relocation-cache invalidation, and WAL routing for regions that split
between a write and a crash."""

import pytest

from repro.config import ClusterConfig
from repro.errors import RegionSplitError, RegionUnavailableError
from repro.hbase import (
    Delete,
    Get,
    HBaseClient,
    HBaseCluster,
    Put,
    RegionBalancer,
    Scan,
)
from repro.hbase.client import HTable
from repro.sim.clock import Simulation

CF = b"cf"


def put(table, key, value=b"x"):
    p = Put(key)
    p.add(CF, b"v", value)
    table.put(p)


def fill(table, n, prefix=b"k", value=b"x"):
    puts = []
    for i in range(n):
        p = Put(prefix + b"%04d" % i)
        p.add(CF, b"v", value)
        puts.append(p)
    table.put_batch(puts)


@pytest.fixture
def table(client):
    return client.create_table("t", families=(CF,))


def only_region(cluster, name="t"):
    regions = cluster.descriptor(name).regions
    assert len(regions) == 1
    return regions[0]


class TestSplitMechanics:
    def test_mid_key_split_tiles_and_preserves_data(self, cluster, table):
        fill(table, 40)
        parent = only_region(cluster)
        cluster.server_for(parent).flush_region(parent)  # HFile half
        fill(table, 40, prefix=b"m")  # memstore half
        low, high = cluster.split_region(parent)
        assert low.start_key == parent.start_key
        assert low.end_key == high.start_key
        assert high.end_key == parent.end_key
        assert len(cluster.descriptor("t").regions) == 2
        rows = [r.row for r in table.scan()]
        assert len(rows) == 80 and rows == sorted(rows)
        assert table.get(Get(b"k0000")) is not None
        assert table.get(Get(b"m0039")) is not None

    def test_split_shares_row_entries_by_reference(self, cluster, table):
        fill(table, 10)
        parent = only_region(cluster)
        parent_entries = dict(parent.memstore._entries)
        low, high = cluster.split_region(parent)
        for daughter in (low, high):
            for row, entry in daughter.memstore._entries.items():
                assert entry is parent_entries[row]  # payloads not copied

    def test_hfile_split_views_share_entry_dict(self, cluster, table):
        fill(table, 10)
        parent = only_region(cluster)
        cluster.server_for(parent).flush_region(parent)
        hfile = parent.hfiles[0]
        low, high = cluster.split_region(parent)
        assert low.hfiles[0]._entries is hfile._entries
        assert high.hfiles[0]._entries is hfile._entries
        assert len(low.hfiles[0]) + len(high.hfiles[0]) == 10

    def test_single_row_region_refuses_to_split(self, cluster, table):
        put(table, b"only")
        with pytest.raises(RegionSplitError):
            cluster.split_region(only_region(cluster))

    def test_empty_region_refuses_to_split(self, cluster, table):
        with pytest.raises(RegionSplitError):
            cluster.split_region(only_region(cluster))

    def test_split_key_must_be_interior(self, cluster, table):
        fill(table, 10)
        with pytest.raises(RegionSplitError):
            cluster.split_region(only_region(cluster), split_key=b"")

    def test_parent_goes_offline_and_version_moves(self, cluster, table):
        fill(table, 10)
        parent = only_region(cluster)
        version = cluster.descriptor("t").version
        cluster.split_region(parent)
        assert not parent.online
        assert parent.split_daughters is not None
        assert cluster.descriptor("t").version > version
        assert parent.name not in cluster._region_host

    def test_daughters_open_on_parents_server(self, cluster, table):
        fill(table, 10)
        parent = only_region(cluster)
        server = cluster.server_for(parent)
        low, high = cluster.split_region(parent)
        assert cluster.server_for(low) is server
        assert cluster.server_for(high) is server

    def test_daughter_sizes_sum_to_parent(self, cluster, table):
        fill(table, 32)
        parent = only_region(cluster)
        parent_size = parent.approx_size_bytes
        low, high = cluster.split_region(parent)
        assert low.approx_size_bytes + high.approx_size_bytes == parent_size
        assert low.approx_size_bytes > 0 and high.approx_size_bytes > 0


class TestAutoSplit:
    def auto_cluster(self, threshold=2048):
        sim = Simulation(seed=7)
        cluster = HBaseCluster(
            sim, ClusterConfig(region_split_threshold_bytes=threshold)
        )
        return cluster, HBaseClient(cluster)

    def test_put_batch_triggers_recursive_split(self):
        cluster, client = self.auto_cluster()
        table = client.create_table("t", families=(CF,))
        fill(table, 500)
        regions = cluster.descriptor("t").regions
        assert len(regions) > 2
        assert all(
            r.approx_size_bytes < 2048 or len(list(r.iter_keys(r.start_key, r.end_key))) < 2
            for r in regions
        )
        assert [r.row for r in table.scan()] == [b"k%04d" % i for i in range(500)]

    def test_single_puts_trigger_split_too(self):
        cluster, client = self.auto_cluster(threshold=512)
        table = client.create_table("t", families=(CF,))
        for i in range(60):
            put(table, b"k%04d" % i)
        assert len(cluster.descriptor("t").regions) > 1
        assert table.get(Get(b"k0000")) is not None

    def test_hot_single_row_region_keeps_growing(self):
        cluster, client = self.auto_cluster(threshold=256)
        table = client.create_table("t", families=(CF,))
        for _ in range(50):
            put(table, b"hot", b"v" * 32)  # one row can never split
        assert len(cluster.descriptor("t").regions) == 1


class TestSplitDuringScan:
    def test_scan_crosses_a_split_that_lands_mid_stream(self, cluster, table):
        fill(table, 60)
        parent = only_region(cluster)
        stream = table.scan(Scan())
        seen = [next(stream).row for _ in range(10)]
        cluster.split_region(parent)  # scanned region goes offline
        seen.extend(r.row for r in stream)
        assert seen == [b"k%04d" % i for i in range(60)]  # no gap, no repeat

    def test_scan_survives_repeated_splits(self, cluster, table):
        fill(table, 64)
        stream = table.scan(Scan())
        seen = []
        for i, result in enumerate(stream):
            seen.append(result.row)
            if i % 10 == 0:
                desc = cluster.descriptor("t")
                region = desc.region_for(result.row)
                try:
                    cluster.split_region(region)
                except RegionSplitError:
                    pass
        assert seen == [b"k%04d" % i for i in range(64)]

    def test_abandoned_scan_settles_the_inflight_batch(self, sim, cluster, table):
        fill(table, 30)
        stream = table.scan(Scan())
        for _ in range(5):
            next(stream)
        rpc_before = sim.metrics.counters()["client.rpc"]
        bytes_before = sim.metrics.counters().get("client.bytes", 0)
        stream.close()  # consumer abandons mid-region
        counters = sim.metrics.counters()
        assert counters["client.rpc"] == rpc_before + 1  # delivered batch
        assert counters["client.bytes"] > bytes_before

    def test_scan_still_raises_on_crash(self, cluster, table):
        fill(table, 30)
        region = only_region(cluster)
        stream = table.scan(Scan())
        next(stream)
        cluster.server_for(region).crash()
        with pytest.raises(RegionUnavailableError):
            list(stream)


class TestClientRelocation:
    def stale_handle(self, cluster, table, row):
        """Simulate the race window: a client whose meta cache answered
        just before the split landed — the cached region is the (now
        offline) parent but the cached version looks current."""
        parent = table._locate(row)
        cluster.split_region(parent)
        table._cached_region = parent
        table._cached_version = table.desc.version
        return parent

    def test_check_and_put_racing_a_split_relocates(self, cluster, table):
        fill(table, 20)
        parent = self.stale_handle(cluster, table, b"k0005")
        p = Put(b"k0005")
        p.add(CF, b"l", b"\x01")
        assert table.check_and_put(b"k0005", CF, b"l", None, p) is True
        assert table._cached_region is not parent
        daughter = cluster.descriptor("t").region_for(b"k0005")
        assert daughter.read_row(b"k0005", [(CF, b"l")]) is not None

    def test_get_and_put_racing_a_split_relocate(self, cluster, table):
        fill(table, 20)
        self.stale_handle(cluster, table, b"k0001")
        assert table.get(Get(b"k0001")) is not None
        table._cached_region = self.stale_handle(cluster, table, b"k0001")
        put(table, b"k0001", b"fresh")
        assert table.get(Get(b"k0001")).value(CF, b"v") == b"fresh"

    def test_delete_racing_a_split_relocates(self, cluster, table):
        fill(table, 20)
        self.stale_handle(cluster, table, b"k0002")
        table.delete(Delete(b"k0002"))
        assert table.get(Get(b"k0002")) is None

    def test_crashes_are_not_masked_by_the_retry(self, cluster, table):
        fill(table, 20)
        region = only_region(cluster)
        cluster.server_for(region).crash()
        with pytest.raises(RegionUnavailableError):
            table.get(Get(b"k0001"))

    def test_relocation_charges_one_meta_round_trip(self, sim, cluster, table):
        fill(table, 20)
        self.stale_handle(cluster, table, b"k0003")
        rpc_before = sim.metrics.counters().get("client.rpc", 0)
        table.get(Get(b"k0003"))
        rpc_after = sim.metrics.counters()["client.rpc"]
        # failed attempt + relocation + successful retry
        assert rpc_after - rpc_before == 3


class TestBalancer:
    def grown_cluster(self, num_servers=2, tables=1):
        sim = Simulation(seed=11)
        cluster = HBaseCluster(
            sim,
            ClusterConfig(
                num_region_servers=num_servers,
                region_split_threshold_bytes=1024,
            ),
        )
        client = HBaseClient(cluster)
        for t in range(tables):
            table = client.create_table(f"t{t}", families=(CF,))
            fill(table, 300)
        return cluster, client

    def test_load_aware_rebalance_evens_out_bytes(self):
        cluster, client = self.grown_cluster(num_servers=4)
        # all daughters sit on the parent's server before balancing
        assert max(cluster.region_distribution().values()) == len(
            cluster.descriptor("t0").regions
        )
        moved = RegionBalancer(cluster, policy="load-aware").rebalance()
        assert moved > 0
        counts = cluster.region_distribution()
        assert max(counts.values()) - min(counts.values()) <= 1
        assert [r.row for r in client.table("t0").scan()] == [
            b"k%04d" % i for i in range(300)
        ]

    def test_round_robin_rebalance_deals_evenly(self):
        cluster, _ = self.grown_cluster(num_servers=3)
        RegionBalancer(cluster, policy="round-robin").rebalance()
        counts = cluster.region_distribution()
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_rebalance_is_deterministic(self):
        def distribution(policy):
            cluster, _ = self.grown_cluster(num_servers=3)
            RegionBalancer(cluster, policy=policy).rebalance()
            return {
                r.start_key: cluster.server_for(r).name
                for r in cluster.descriptor("t0").regions
            }

        for policy in ("round-robin", "load-aware"):
            assert distribution(policy) == distribution(policy)

    def test_both_policies_skip_dead_servers(self):
        for policy in ("round-robin", "load-aware"):
            cluster, client = self.grown_cluster(num_servers=3)
            balancer = RegionBalancer(cluster, policy=policy)
            balancer.rebalance()  # spread regions across all three
            dead = next(s for s in cluster.servers if s.regions)
            stranded = set(dead.regions)
            dead.crash()
            balancer.rebalance()  # must not raise on the dead host
            assert set(dead.regions) == stranded  # recovery's job, not ours
            counts = cluster.region_distribution()
            live = [s.name for s in cluster.servers if s.alive]
            assert all(counts[name] > 0 for name in live)

    def test_unknown_policy_rejected(self, cluster):
        with pytest.raises(ValueError):
            RegionBalancer(cluster, policy="chaotic")

    def test_scale_out_then_rebalance_uses_new_servers(self):
        cluster, client = self.grown_cluster(num_servers=1)
        cluster.add_servers(3)
        assert len(cluster.servers) == 4
        RegionBalancer(cluster, policy="load-aware").rebalance()
        counts = cluster.region_distribution()
        assert sum(1 for c in counts.values() if c > 0) == 4
        assert client.table("t0").get(Get(b"k0000")) is not None

    def test_rebalance_invalidates_relocation_caches(self):
        cluster, client = self.grown_cluster(num_servers=2)
        table = client.table("t0")
        table.get(Get(b"k0000"))  # warm the location cache
        version = table.desc.version
        moved = RegionBalancer(cluster, policy="round-robin").rebalance()
        assert moved > 0
        assert table.desc.version > version  # cache keys off this
        assert table._cached_version != table.desc.version
        assert table.get(Get(b"k0000")) is not None  # re-resolves cleanly
        assert table._cached_version == table.desc.version


class TestWalRoutingAcrossSplits:
    def test_recovery_replays_parent_log_into_daughters(self, cluster, table):
        # rows live only in the memstore + the parent's WAL when the
        # region splits; the crash then loses both daughters' memstores
        fill(table, 30)
        parent = only_region(cluster)
        server = cluster.server_for(parent)
        low, high = cluster.split_region(parent)
        assert cluster.server_for(low) is server
        server.crash()
        assert cluster.recover_server(server) == 2
        rows = [r.row for r in table.scan()]
        assert rows == [b"k%04d" % i for i in range(30)]

    def test_recovery_after_two_generations_of_splits(self, cluster, table):
        fill(table, 40)
        parent = only_region(cluster)
        server = cluster.server_for(parent)
        low, high = cluster.split_region(parent)
        cluster.split_region(low)  # grand-daughters inherit the lineage
        server.crash()
        cluster.recover_server(server)
        assert [r.row for r in table.scan()] == [b"k%04d" % i for i in range(40)]

    def test_daughter_flush_truncates_its_slice_of_the_parent_log(
        self, cluster, table
    ):
        fill(table, 30)
        parent = only_region(cluster)
        server = cluster.server_for(parent)
        low, high = cluster.split_region(parent)
        assert server.wal.pending_count(parent.name) == 30
        server.flush_region(low)
        remaining = server.wal.entries_for(parent.name)
        assert remaining  # high's half is still unflushed
        assert all(e.row >= high.start_key for e in remaining)
        server.flush_region(high)
        assert server.wal.pending_count(parent.name) == 0

    def test_recovered_edits_survive_a_second_failover(self, cluster, table):
        fill(table, 10)  # unflushed: only in the memstore + rs1's WAL
        first = cluster.server_for(only_region(cluster))
        first.crash()
        cluster.recover_server(first)
        # recovery must persist the replayed edits on the new host —
        # the dead server's log is gone, so an unflushed re-open would
        # lose everything on the next crash
        second = cluster.server_for(only_region(cluster))
        second.crash()
        cluster.recover_server(second)
        assert [r.row for r in table.scan()] == [b"k%04d" % i for i in range(10)]

    def test_recovery_does_not_double_count_replayed_bytes(self, cluster, table):
        fill(table, 20)  # all unflushed: in the memstore + the WAL
        region = only_region(cluster)
        size_before = region.approx_size_bytes
        assert size_before == region._component_size_bytes()
        server = cluster.server_for(region)
        server.crash()
        cluster.recover_server(server)
        recovered = only_region(cluster)
        # the replayed rows must not be counted on top of the old total
        # (an inflated size would trip the split threshold spuriously)
        assert recovered.approx_size_bytes == size_before
        assert recovered.approx_size_bytes == recovered._component_size_bytes()

    def test_moved_daughter_carries_no_wal_dependency(self, cluster, table):
        fill(table, 30)
        parent = only_region(cluster)
        source = cluster.server_for(parent)
        low, high = cluster.split_region(parent)
        target = next(s for s in cluster.servers if s is not source)
        assert cluster.move_region(high, target)  # flushes before moving
        put(table, high.start_key, b"after-move")
        target.crash()
        cluster.recover_server(target)
        assert table.get(Get(high.start_key)).value(CF, b"v") == b"after-move"
        # and the stay-behind daughter still recovers from the old log
        source.crash()
        cluster.recover_server(source)
        assert table.get(Get(b"k0000")) is not None
