"""Serving-layer tests: row cache, admission control, Zipfian workload.

Covers the millions-of-users serving stack end to end: the byte-bounded
LRU row cache (deterministic eviction, coherence across every
invalidation path — writes, splits, moves, crash recovery, restart,
flush and compaction), the p99-targeted admission controller (shed
decisions bit-identical across reruns, typed retryable error absorbed
by the client failover path), the Zipfian workload generator, and the
serving bench cells the CI smoke asserts on.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import SERVING_MODES, _serving_cell, serving_smoke
from repro.config import ClusterConfig, ServingConfig
from repro.errors import (
    ClusterConfigError,
    RegionUnavailableError,
    ServerOverloadedError,
)
from repro.hbase.cache import RowCache, missed
from repro.hbase.cell import Result
from repro.hbase.client import HBaseClient
from repro.hbase.cluster import HBaseCluster
from repro.hbase.ops import Delete, Get, Put
from repro.sim.clock import Simulation
from repro.sim.rng import derive_rng
from repro.tpcw.serving import ServingWorkload, ZipfianPopulation, fold_rank

CF = b"cf"
Q = b"v"


def result_for(row: bytes, value: bytes) -> Result:
    r = Result(row)
    r.add(CF, Q, 1, value)
    return r


# --------------------------------------------------------------- ServingConfig
class TestServingConfig:
    def test_defaults_disable_everything(self):
        cfg = ServingConfig()
        assert not cfg.cache_enabled
        assert not cfg.admission_enabled

    def test_enabled_flags(self):
        cfg = ServingConfig(row_cache_bytes=1024, admission_queue_ms=4.0)
        assert cfg.cache_enabled
        assert cfg.admission_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(row_cache_bytes=-1),
            dict(cache_hit_ms=-0.1),
            dict(cache_entry_overhead_bytes=-1),
            dict(admission_queue_ms=0.0),
            dict(admission_queue_ms=-2.0),
            dict(p99_budget_ms=5.0),  # budget without admission control
            dict(admission_queue_ms=4.0, p99_budget_ms=0.0),
            dict(admission_queue_ms=4.0, p99_window=0),
            dict(admission_queue_ms=4.0, p99_refresh_every=0),
            dict(admission_queue_ms=4.0, qos_weights=(("t", 0.0),)),
            dict(shed_retry_after_ms=-1.0),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ClusterConfigError):
            ServingConfig(**kwargs)


# ------------------------------------------------------------------- RowCache
class TestRowCache:
    def test_lookup_miss_then_hit(self):
        cache = RowCache(4096)
        assert missed(cache.lookup("r1", b"a", None))
        cache.insert("r1", b"a", None, result_for(b"a", b"x"))
        got = cache.lookup("r1", b"a", None)
        assert not missed(got)
        assert got.value(CF, Q) == b"x"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_negative_caching_distinguishes_none_from_absent(self):
        cache = RowCache(4096)
        cache.insert("r1", b"gone", None, None)
        got = cache.lookup("r1", b"gone", None)
        assert got is None
        assert not missed(got)
        assert cache.hits == 1

    def test_lru_eviction_order_is_strict(self):
        overhead = 64
        # capacity = exactly three entries (all rows/values equal-sized)
        entry = overhead + 1 + result_for(b"a", b"0123456789").size_bytes
        cache = RowCache(3 * entry, entry_overhead_bytes=overhead)
        log: list = []
        cache.eviction_log = log
        for row in (b"a", b"b", b"c"):
            cache.insert("r", row, None, result_for(row, b"0123456789"))
        # touch a so b becomes LRU, then insert d -> b evicted, then e -> c
        cache.lookup("r", b"a", None)
        cache.insert("r", b"d", None, result_for(b"d", b"0123456789"))
        cache.insert("r", b"e", None, result_for(b"e", b"0123456789"))
        assert [key[1] for key in log] == [b"b", b"c"]
        assert not missed(cache.lookup("r", b"a", None))

    def test_eviction_sequence_bit_identical_across_reruns(self):
        def run():
            rng = derive_rng(99, "cache-evict")
            cache = RowCache(2048)
            cache.eviction_log = []
            for _ in range(400):
                row = b"%04d" % int(rng.integers(0, 64))
                if missed(cache.lookup("r", row, None)):
                    cache.insert("r", row, None, result_for(row, bytes(24)))
            return cache.eviction_log, cache.stats()

        first_log, first_stats = run()
        second_log, second_stats = run()
        assert first_log == second_log
        assert first_stats == second_stats
        assert first_stats["evictions"] > 0

    def test_oversized_entry_skipped(self):
        cache = RowCache(128, entry_overhead_bytes=64)
        cache.insert("r", b"big", None, result_for(b"big", bytes(512)))
        assert len(cache) == 0
        assert cache.size_bytes == 0

    def test_size_accounting_returns_to_zero(self):
        cache = RowCache(4096)
        for row in (b"a", b"b", b"c"):
            cache.insert("r1", row, None, result_for(row, b"xy"))
            cache.insert("r2", row, None, None)
        cache.invalidate_row("r1", b"a")
        cache.invalidate_region("r2")
        cache.invalidate_region("r1")
        assert len(cache) == 0
        assert cache.size_bytes == 0
        assert cache.invalidations == 6

    def test_variant_projections_are_separate_entries(self):
        cache = RowCache(4096)
        variant = RowCache.variant([(CF, Q)])
        cache.insert("r", b"a", None, result_for(b"a", b"full"))
        cache.insert("r", b"a", variant, result_for(b"a", b"proj"))
        assert cache.lookup("r", b"a", None).value(CF, Q) == b"full"
        assert cache.lookup("r", b"a", variant).value(CF, Q) == b"proj"
        cache.invalidate_row("r", b"a")  # drops every variant
        assert missed(cache.lookup("r", b"a", None))
        assert missed(cache.lookup("r", b"a", variant))


# ------------------------------------------------------- cache coherence (e2e)
def build_cluster(serving: ServingConfig, num_servers: int = 2, seed: int = 5):
    sim = Simulation(seed=seed)
    cluster = HBaseCluster(
        sim,
        ClusterConfig(
            num_region_servers=num_servers, seed=seed, serving=serving
        ),
    )
    client = HBaseClient(cluster)
    table = client.create_table("t", split_keys=[b"%08d" % 50])
    puts = []
    for i in range(100):
        p = Put(b"%08d" % i)
        p.add(CF, Q, b"v0-%08d" % i)
        puts.append(p)
    table.put_batch(puts)
    return cluster, table


class TestCacheCoherence:
    """Run the same mutation/read script with the cache on and off; a
    cached read must never observe anything the uncached cluster would
    not. Each step exercises one invalidation path."""

    def check_mirror(self, step):
        cached_cluster, cached_table = build_cluster(
            ServingConfig(row_cache_bytes=64 * 1024)
        )
        plain_cluster, plain_table = build_cluster(ServingConfig())
        for cluster, table in (
            (cached_cluster, cached_table),
            (plain_cluster, plain_table),
        ):
            # warm (or no-op) pass, then the step, then a full readback
            for i in range(100):
                table.get(Get(b"%08d" % i))
            step(cluster, table)
            values = [
                (r.value(CF, Q) if r is not None else None)
                for i in range(100)
                for r in (table.get(Get(b"%08d" % i)),)
            ]
            if cluster is cached_cluster:
                cached_values = values
                totals = cluster.serving_stats()["totals"]
                assert totals["cache_hits"] > 0
            else:
                assert values == cached_values

    def test_put_invalidates(self):
        def step(cluster, table):
            p = Put(b"%08d" % 7)
            p.add(CF, Q, b"updated")
            table.put(p)

        self.check_mirror(step)

    def test_delete_invalidates(self):
        def step(cluster, table):
            table.delete(Delete(b"%08d" % 7))

        self.check_mirror(step)

    def test_flush_preserves_reads(self):
        def step(cluster, table):
            for region in list(cluster.descriptor("t").regions):
                cluster.server_for(region).flush_region(region)

        self.check_mirror(step)

    def test_compaction_preserves_reads(self):
        def step(cluster, table):
            p = Put(b"%08d" % 3)
            p.add(CF, Q, b"newest")
            table.put(p)
            cluster.major_compact("t")

        self.check_mirror(step)

    def test_split_invalidates_parent(self):
        def step(cluster, table):
            region = cluster.descriptor("t").regions[0]
            cluster.split_region(region, b"%08d" % 25)
            p = Put(b"%08d" % 10)
            p.add(CF, Q, b"post-split")
            table.put(p)

        self.check_mirror(step)

    def test_move_invalidates(self):
        def step(cluster, table):
            region = cluster.descriptor("t").regions[0]
            source = cluster.server_for(region)
            target = next(s for s in cluster.servers if s is not source)
            assert cluster.move_region(region, target)
            p = Put(b"%08d" % 1)
            p.add(CF, Q, b"post-move")
            table.put(p)

        self.check_mirror(step)

    def test_crash_recovery_invalidates(self):
        def step(cluster, table):
            p = Put(b"%08d" % 60)
            p.add(CF, Q, b"pre-crash")  # unflushed: must survive replay
            table.put(p)
            victim = cluster.servers[0]
            victim.crash()
            cluster.recover_server(victim)

        self.check_mirror(step)

    def test_restart_clears_cache(self):
        def step(cluster, table):
            victim = cluster.servers[0]
            victim.crash()
            cluster.recover_server(victim)
            victim.restart()

        self.check_mirror(step)

    def test_cache_hit_is_cheaper_than_miss(self):
        cluster, table = build_cluster(
            ServingConfig(row_cache_bytes=64 * 1024, cache_hit_ms=0.01)
        )
        sim = cluster.sim
        before = sim.clock.now_ms
        table.get(Get(b"%08d" % 4))  # miss, fills
        miss_cost = sim.clock.now_ms - before
        before = sim.clock.now_ms
        table.get(Get(b"%08d" % 4))  # hit
        hit_cost = sim.clock.now_ms - before
        totals = cluster.serving_stats()["totals"]
        assert totals["cache_hits"] == 1
        # a hit pays rpc + transfer + cache_hit_ms, never seek/read_row
        assert hit_cost < miss_cost

    def test_multi_version_reads_bypass_cache(self):
        sim = Simulation(seed=5)
        cluster = HBaseCluster(
            sim,
            ClusterConfig(
                num_region_servers=1,
                seed=5,
                serving=ServingConfig(row_cache_bytes=64 * 1024),
            ),
        )
        client = HBaseClient(cluster)
        table = client.create_table("t", max_versions=3)
        p = Put(b"row")
        p.add(CF, Q, b"x")
        table.put(p)
        g = Get(b"row", max_versions=3)
        table.get(g)
        table.get(g)
        totals = cluster.serving_stats()["totals"]
        assert totals["cache_hits"] == 0
        assert totals["cache_misses"] == 0


# ------------------------------------------------------------------- admission
class TestAdmission:
    def test_shed_error_is_typed_and_retryable(self):
        err = ServerOverloadedError("shed", retry_after_ms=2.5)
        assert isinstance(err, RegionUnavailableError)
        assert err.retry_after_ms == 2.5

    def test_shed_decisions_bit_identical_across_reruns(self):
        first = _serving_cell(192, 4, "cache+shed", num_servers=2, seed=13)
        second = _serving_cell(192, 4, "cache+shed", num_servers=2, seed=13)
        assert first == second
        assert first["shed"] > 0
        assert first["violations"] == 0

    def test_shed_logs_identical_across_reruns(self):
        def run():
            sim = Simulation(seed=5)
            cluster = HBaseCluster(
                sim,
                ClusterConfig(
                    num_region_servers=1,
                    seed=5,
                    serving=ServingConfig(
                        admission_queue_ms=0.5, p99_budget_ms=0.4
                    ),
                ),
            )
            logs = []
            for server in cluster.servers:
                server.admission.shed_log = log = []
                logs.append(log)
            cell_logs = []
            _drive_overload(cluster)
            for log in logs:
                cell_logs.extend(log)
            return cell_logs

        first, second = run(), run()
        assert first == second
        assert first  # shedding actually engaged

    def test_qos_weights_shed_batch_first(self):
        from repro.hbase.admission import AdmissionController

        ctrl = AdmissionController(
            "rs1",
            ServingConfig(
                admission_queue_ms=8.0,
                qos_weights=(("batch", 0.25), ("interactive", 2.0)),
            ),
        )
        assert ctrl.bound_ms("batch") == 2.0
        assert ctrl.bound_ms("interactive") == 16.0
        assert ctrl.bound_ms("other") == 8.0
        backlog = 5.0  # between the batch and interactive bounds
        with pytest.raises(ServerOverloadedError):
            ctrl.admit("batch", 0.0, backlog)
        ctrl.admit("interactive", 0.0, backlog)
        ctrl.admit("other", 0.0, backlog)
        assert ctrl.stats()["shed_by_table"] == {"batch": 1}

    def test_pressure_tightens_bound_until_tail_recovers(self):
        from repro.hbase.admission import AdmissionController

        ctrl = AdmissionController(
            "rs1",
            ServingConfig(
                admission_queue_ms=8.0,
                p99_budget_ms=2.0,
                p99_window=8,
                p99_refresh_every=4,
            ),
        )
        for i in range(4):  # completions at 4x the budget
            token = ctrl.admit("t", float(i), 0.0)
            ctrl.complete(token, float(i) + 8.0)
        assert ctrl.pressure == pytest.approx(4.0)
        assert ctrl.bound_ms("t") == pytest.approx(2.0)
        for i in range(8):  # tail back under budget
            token = ctrl.admit("t", float(i), 0.0)
            ctrl.complete(token, float(i) + 1.0)
        assert ctrl.pressure == 1.0
        assert ctrl.bound_ms("t") == 8.0

    def test_client_absorbs_shed_via_retry(self):
        # overload with shedding on: clients retry/drop but every
        # committed op still satisfies the read/durability oracles
        cell = _serving_cell(256, 4, "cache+shed", num_servers=2, seed=3)
        assert cell["shed"] > 0
        assert cell["committed"] > 0
        assert cell["violations"] == 0
        # drops are the ops whose retries were exhausted, never silent
        assert cell["dropped"] <= cell["shed"]

    def test_baseline_mode_never_sheds(self):
        cell = _serving_cell(128, 3, "baseline", num_servers=2, seed=3)
        assert cell["shed"] == 0
        assert cell["hit_ratio"] == 0.0
        assert cell["violations"] == 0


def _drive_overload(cluster):
    """Hammer one region server through the scheduler so its virtual
    backlog exceeds any reasonable bound."""
    from repro.hbase.client import HBaseClient, HTable
    from repro.sim.scheduler import DeterministicScheduler

    client = HBaseClient(cluster)
    table = client.create_table("hot")
    p = Put(b"k")
    p.add(CF, Q, b"v")
    table.put(p)
    cluster.sim.reset_clock()
    scheduler = DeterministicScheduler(cluster.sim)
    for i in range(64):

        def program(vc, i=i):
            handle = HTable(cluster, "hot")
            for _ in range(4):
                yield "op"
                try:
                    handle.get(Get(b"k"))
                except ServerOverloadedError:
                    pass

        scheduler.add_client(f"c{i}", program)
    scheduler.run()


# ------------------------------------------------------------------- workload
class TestZipfianWorkload:
    def test_population_sampling_deterministic(self):
        zipf = ZipfianPopulation(population=10_000, s=1.1)
        a = zipf.sample(derive_rng(1, "z"), 256)
        b = zipf.sample(derive_rng(1, "z"), 256)
        assert (a == b).all()

    def test_skew_concentrates_on_head(self):
        zipf = ZipfianPopulation(population=100_000, s=1.1)
        assert zipf.head_mass(100) > 0.3
        assert zipf.head_mass(100) > zipf.head_mass(10) > zipf.head_mass(1) > 0
        flat = ZipfianPopulation(population=100_000, s=0.0)
        assert flat.head_mass(100) == pytest.approx(100 / 100_000)

    def test_fold_rank_spreads_head(self):
        rows = {fold_rank(rank, 2048) for rank in range(32)}
        assert len(rows) == 32  # hot head lands on 32 distinct rows
        assert max(rows) > 1024  # ...spread across the key space

    def test_client_stream_independent_of_peers(self):
        zipf = ZipfianPopulation(population=1000, s=1.1)
        w = ServingWorkload(zipf, 256, seed=42)
        ops = w.ops_for_client(3, 16)
        assert w.ops_for_client(3, 16) == ops  # replayable
        assert w.ops_for_client(4, 16) != ops  # but personal
        kinds = {k for k, _ in ops}
        assert kinds <= {"get", "put"}

    def test_read_fraction_extremes(self):
        zipf = ZipfianPopulation(population=100, s=1.0)
        all_reads = ServingWorkload(zipf, 64, seed=1, read_fraction=1.0)
        assert all(k == "get" for k, _ in all_reads.ops_for_client(0, 64))
        all_writes = ServingWorkload(zipf, 64, seed=1, read_fraction=0.0)
        assert all(k == "put" for k, _ in all_writes.ops_for_client(0, 64))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianPopulation(population=0)
        with pytest.raises(ValueError):
            ZipfianPopulation(s=-1.0)
        zipf = ZipfianPopulation(population=10)
        with pytest.raises(ValueError):
            ServingWorkload(zipf, 0, seed=1)
        with pytest.raises(ValueError):
            ServingWorkload(zipf, 10, seed=1, read_fraction=1.5)


# ------------------------------------------------------------------- bench/CI
class TestServingBench:
    def test_smoke_satisfies_ci_assertions(self):
        out = serving_smoke(clients=256, ops_per_client=4)
        assert out["violations"] == 0
        assert out["hit_ratio"] > 0.0
        assert out["p99_cache"] <= out["p99_baseline"]
        assert out["p99_shed"] <= out["p99_baseline"]
        assert out["goodput_shed"] >= 0.9 * out["goodput_cache"]

    def test_overload_smoke_sheds_and_improves_tail(self):
        out = serving_smoke(clients=1024, ops_per_client=4)
        assert out["shed"] > 0
        assert out["hit_ratio"] > 0.0
        assert out["p99_shed"] <= out["p99_cache"] <= out["p99_baseline"]
        assert out["goodput_shed"] >= 0.9 * out["goodput_cache"]
        assert out["violations"] == 0

    def test_smoke_bit_identical_across_reruns(self):
        assert serving_smoke(clients=128, ops_per_client=3) == serving_smoke(
            clients=128, ops_per_client=3
        )

    def test_modes_cover_grid(self):
        assert SERVING_MODES == ("baseline", "cache", "cache+shed")
