"""Property tests for the deterministic multi-client scheduler.

Randomized (but seeded) interleavings of blind-write transactions must
leave the database in a state some *serial* execution order produces —
here, the order in which the transactions actually committed — and the
scheduler itself must be bit-identical across two runs with the same
seed."""

from __future__ import annotations

import random

import pytest

from repro.errors import TransactionConflictError
from repro.relational.company import COMPANY_ROOTS, company_schema, company_workload
from repro.sim.clock import Simulation
from repro.sim.scheduler import DeterministicScheduler, run_transaction
from repro.systems import BaselineSystem, SynergyEvaluatedSystem
from tests.conftest import load_company_data

EMPLOYEE_UPDATE = "UPDATE Employee SET EName = ? WHERE EID = ?"
ADDRESS_UPDATE = "UPDATE Address SET City = ? WHERE AID = ?"


def build_system(kind: str, seed: int):
    sim = Simulation(seed=seed)
    if kind == "synergy":
        system = SynergyEvaluatedSystem(
            company_schema(), company_workload(), COMPANY_ROOTS, sim=sim
        )
        load_company_data(system.system)
    else:
        system = BaselineSystem(company_schema(), company_workload(), sim=sim)
        load_company_data(system)
    system.finish_load()
    return system


def random_transactions(seed: int, num_clients: int, txns_per_client: int):
    """Per-client lists of blind-write transactions over a small hot key
    space (EIDs 1-4, AIDs 1-3), so interleavings genuinely contend."""
    rng = random.Random(seed)
    per_client = []
    for c in range(num_clients):
        txns = []
        for t in range(txns_per_client):
            statements = []
            for k in range(rng.randint(1, 2)):
                token = f"v{seed}-{c}-{t}-{k}"
                if rng.random() < 0.6:
                    statements.append(
                        (EMPLOYEE_UPDATE, (token, rng.randint(1, 4)))
                    )
                else:
                    statements.append(
                        (ADDRESS_UPDATE, (token, rng.randint(1, 3)))
                    )
            txns.append(statements)
        per_client.append(txns)
    return per_client


class StatementLoggingSession:
    """Session wrapper recording each successfully executed statement.

    For auto-commit systems (Synergy: every statement is its own
    lock-protected transaction) the serialization point is statement
    execution, not ``run_transaction`` completion — writes land the
    moment ``execute`` returns, so the equivalent serial order is the
    statement execution order, which this wrapper captures."""

    def __init__(self, inner, log: list) -> None:
        self.inner = inner
        self.log = log

    def begin(self) -> None:
        self.inner.begin()

    def execute(self, sql, params=()):
        result = self.inner.execute(sql, params)
        self.log.append((sql, params))
        return result

    def commit(self) -> None:
        self.inner.commit()

    def abort(self) -> None:
        self.inner.abort()


def run_scheduled(system, per_client, commit_log=None, statement_log=None):
    scheduler = DeterministicScheduler(system.sim)
    for i, txns in enumerate(per_client):
        session = system.open_session(f"c{i}")
        if statement_log is not None:
            session = StatementLoggingSession(session, statement_log)

        def program(client, session=session, txns=txns):
            for txn in txns:
                if commit_log is not None:
                    yield from run_transaction(
                        client, session, txn,
                        on_commit=lambda txn=txn: commit_log.append(txn),
                    )
                else:
                    yield from run_transaction(client, session, txn)

        scheduler.add_client(f"c{i}", program)
    return scheduler, scheduler.run()


def db_state(system):
    emp = system.execute("SELECT * FROM Employee")
    addr = system.execute("SELECT * FROM Address")
    return (
        sorted((r["EID"], r["EName"]) for r in emp),
        sorted((r["AID"], r["City"]) for r in addr),
    )


class TestSerializability:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mvcc_final_state_matches_commit_order_replay(self, seed):
        """MVCC buffers a transaction's writes until commit makes them
        visible atomically, so the concurrent final state must equal the
        serial execution of the committed transactions in
        commit-completion order."""
        per_client = random_transactions(seed, num_clients=3, txns_per_client=4)
        system = build_system("mvcc", seed)
        commit_log: list = []
        _, report = run_scheduled(system, per_client, commit_log)
        assert report.committed == len(commit_log)
        concurrent_state = db_state(system)

        serial = build_system("mvcc", seed)
        for txn in commit_log:
            for sql, params in txn:
                serial.execute(sql, params)
        assert db_state(serial) == concurrent_state

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_synergy_final_state_matches_statement_order_replay(self, seed):
        """Synergy sessions are auto-commit — each statement is its own
        lock-protected transaction whose write lands when ``execute``
        returns — so its serialization order is the statement execution
        order, and replaying the executed statements serially in that
        order must reproduce the concurrent final state."""
        per_client = random_transactions(seed, num_clients=3, txns_per_client=4)
        system = build_system("synergy", seed)
        statement_log: list = []
        _, report = run_scheduled(system, per_client, statement_log=statement_log)
        assert report.committed == sum(len(t) for t in per_client)
        assert len(statement_log) == sum(
            len(txn) for txns in per_client for txn in txns
        )
        concurrent_state = db_state(system)

        serial = build_system("synergy", seed)
        for sql, params in statement_log:
            serial.execute(sql, params)
        assert db_state(serial) == concurrent_state

    def test_every_transaction_commits_despite_conflicts(self):
        """Blind writes with retries always make progress: nothing is
        lost even when the optimistic check aborts transactions."""
        per_client = random_transactions(7, num_clients=4, txns_per_client=5)
        system = build_system("mvcc", 7)
        _, report = run_scheduled(system, per_client)
        total = sum(len(t) for t in per_client)
        assert report.committed == total
        assert report.aborted > 0  # the hot key space genuinely conflicts
        assert system.tephra.conflict_count == report.aborted


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["mvcc", "synergy"])
    def test_bit_identical_across_runs(self, kind):
        """Two runs from the same seed produce the same interleaving
        trace, the same stats and the same final state — bit for bit."""
        outcomes = []
        for _ in range(2):
            per_client = random_transactions(3, num_clients=4, txns_per_client=4)
            system = build_system(kind, 3)
            scheduler, report = run_scheduled(system, per_client)
            outcomes.append(
                (scheduler.trace, report.as_dict(), db_state(system))
            )
        assert outcomes[0] == outcomes[1]


class TestContentionMechanics:
    def test_synergy_lock_waits_are_counted_and_state_consistent(self):
        system = build_system("synergy", 11)
        # every client updates employees living at the same root Address
        per_client = [
            [[(EMPLOYEE_UPDATE, (f"n{c}-{t}", 1 + (t % 2)))] for t in range(4)]
            for c in range(4)
        ]
        _, report = run_scheduled(system, per_client)
        assert report.lock_wait_count > 0
        assert report.aborted == 0  # locking blocks, it does not abort
        assert report.committed == 16
        # no lock left held: a fresh write must not wait
        system.execute(EMPLOYEE_UPDATE, ("final", 1))
        rows = system.execute("SELECT * FROM Employee WHERE EID = ?", (1,))
        assert rows[0]["EName"] == "final"

    def test_clean_teardown_after_run(self):
        """The scheduler restores the simulation for single-client use:
        master clock advanced to the makespan, no lingering context."""
        system = build_system("mvcc", 5)
        per_client = random_transactions(5, num_clients=2, txns_per_client=2)
        _, report = run_scheduled(system, per_client)
        assert system.sim.concurrency is None
        assert system.sim.clock.now_ms == pytest.approx(report.makespan_ms)
        # ordinary execution still works after the scheduled run
        rows = system.execute("SELECT * FROM Department WHERE DNo = ?", (1,))
        assert len(rows) == 1

    def test_mvcc_in_transaction_reads_are_read_committed(self):
        """Pin the documented isolation model: in-transaction reads see
        the committed store — not a begin-time snapshot, and not the
        session's own buffered write intents."""
        system = build_system("mvcc", 13)
        s1 = system.open_session("a")
        s2 = system.open_session("b")
        s1.begin()
        before = s1.execute("SELECT * FROM Employee WHERE EID = ?", (1,))
        assert before[0]["EName"] != "by-s2"
        s2.begin()
        s2.execute(EMPLOYEE_UPDATE, ("by-s2", 1))
        s2.commit()
        again = s1.execute("SELECT * FROM Employee WHERE EID = ?", (1,))
        assert again[0]["EName"] == "by-s2"  # read committed, not snapshot
        s1.execute(EMPLOYEE_UPDATE, ("own-write", 2))
        own = s1.execute("SELECT * FROM Employee WHERE EID = ?", (2,))
        assert own[0]["EName"] != "own-write"  # intents apply at commit
        s1.abort()
        rows = system.execute("SELECT * FROM Employee WHERE EID = ?", (2,))
        assert rows[0]["EName"] != "own-write"  # abort leaves no trace

    def test_mvcc_sessions_overlap_for_real(self):
        """Two interleaved sessions on one Tephra server: the later
        committer of a conflicting write aborts."""
        system = build_system("mvcc", 9)
        s1 = system.open_session("a")
        s2 = system.open_session("b")
        s1.begin()
        s2.begin()
        s1.execute(EMPLOYEE_UPDATE, ("from-s1", 1))
        s2.execute(EMPLOYEE_UPDATE, ("from-s2", 1))
        s1.commit()
        with pytest.raises(TransactionConflictError):
            s2.commit()
        rows = system.execute("SELECT * FROM Employee WHERE EID = ?", (1,))
        assert rows[0]["EName"] == "from-s1"
