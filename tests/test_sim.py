"""Unit tests for the virtual-time substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import SimClock, Simulation
from repro.sim.metrics import MetricsRegistry, Timer
from repro.sim.rng import derive_rng, derive_seed


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ms == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now_ms == pytest.approx(7.5)

    def test_cannot_go_backwards(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_monotonic_under_any_charge_sequence(self, deltas):
        clock = SimClock()
        last = 0.0
        for d in deltas:
            clock.advance(d)
            assert clock.now_ms >= last
            last = clock.now_ms


class TestSimulation:
    def test_charge_advances_clock(self):
        sim = Simulation()
        sim.charge(3.0)
        assert sim.clock.now_ms == pytest.approx(3.0)

    def test_charge_records_timer(self):
        sim = Simulation()
        sim.charge(3.0, "x")
        assert sim.metrics.timer("x").total_ms == pytest.approx(3.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Simulation().charge(-0.1)

    def test_stopwatch_measures_delta(self):
        sim = Simulation()
        sw = sim.stopwatch()
        sim.charge(10.0)
        assert sw.stop() == pytest.approx(10.0)

    def test_measure_context_manager(self):
        sim = Simulation()
        with sim.measure("op") as sw:
            sim.charge(4.0)
        assert sw.elapsed_ms == pytest.approx(4.0)
        assert sim.metrics.timer("op").count == 1

    def test_jitter_is_deterministic_per_seed(self):
        a = Simulation(seed=7, jitter_fraction=0.1)
        b = Simulation(seed=7, jitter_fraction=0.1)
        for _ in range(10):
            a.charge(1.0)
            b.charge(1.0)
        assert a.clock.now_ms == pytest.approx(b.clock.now_ms)

    def test_jitter_changes_with_seed(self):
        a = Simulation(seed=7, jitter_fraction=0.1)
        b = Simulation(seed=8, jitter_fraction=0.1)
        for _ in range(10):
            a.charge(1.0)
            b.charge(1.0)
        assert a.clock.now_ms != b.clock.now_ms

    def test_zero_jitter_is_exact(self):
        sim = Simulation(seed=7, jitter_fraction=0.0)
        for _ in range(10):
            sim.charge(1.0)
        assert sim.clock.now_ms == pytest.approx(10.0)

    def test_reset_clock_preserves_metrics(self):
        sim = Simulation()
        sim.charge(5.0, "op")
        sim.reset_clock()
        assert sim.clock.now_ms == 0.0
        assert sim.metrics.timer("op").count == 1


class TestMetrics:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counters()["a"] == 5

    def test_timer_stats(self):
        t = Timer("t")
        for v in (1.0, 2.0, 3.0):
            t.record(v)
        assert t.count == 3
        assert t.mean_ms == pytest.approx(2.0)
        assert t.total_ms == pytest.approx(6.0)
        assert t.stderr_ms > 0

    def test_timer_stderr_single_sample_is_zero(self):
        t = Timer("t")
        t.record(5.0)
        assert t.stderr_ms == 0.0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.timer("t").record(1.0)
        reg.reset()
        assert reg.counters()["a"] == 0
        assert reg.timer("t").count == 0


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")

    def test_derive_seed_label_sensitive(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_derive_rng_streams_independent(self):
        a = derive_rng(1, "a")
        b = derive_rng(1, "b")
        assert list(a.integers(0, 100, 5)) != list(b.integers(0, 100, 5))

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_derive_seed_in_range(self, seed, label):
        s = derive_seed(seed, label)
        assert 0 <= s < 2**64
