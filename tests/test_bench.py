"""Benchmark harness: statistics, result rendering, and the fast
experiments (Fig. 10 at tiny scale, Fig. 11, static tables)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.bench.experiments import run_fig10, run_fig11, run_fig13, run_table1
from repro.bench.harness import (
    ExperimentResult,
    Stat,
    ratio_of_means,
    render_table,
    summarize,
)


class TestStats:
    def test_summarize_mean_and_stderr(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.stderr == pytest.approx(math.sqrt(1.0 / 3.0))
        assert s.n == 3

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.mean == 5.0 and s.stderr == 0.0

    def test_empty(self):
        assert math.isnan(summarize([]).mean)

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=50))
    def test_mean_within_range(self, xs):
        s = summarize(xs)
        assert min(xs) - 1e-9 <= s.mean <= max(xs) + 1e-9


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular

    def test_experiment_result_text(self):
        r = ExperimentResult("F", "title", "x")
        r.x_values = [1, 2]
        s = r.add_series("sys")
        s.set(1, Stat(10.0, 0.5, 3))
        s.set(2, None)
        text = r.to_text()
        assert "10.0" in text and "X" in text

    def test_ratio_of_means(self):
        r = ExperimentResult("F", "t", "x")
        r.x_values = ["a"]
        r.add_series("n").set("a", Stat(10.0, 0, 1))
        r.add_series("d").set("a", Stat(5.0, 0, 1))
        assert ratio_of_means(r, "n", "d") == pytest.approx(2.0)


class TestFastExperiments:
    def test_fig11_overhead_monotonic(self):
        result = run_fig11(lock_counts=(5, 50), repetitions=2)
        small = result.get("Overhead", 5)
        large = result.get("Overhead", 50)
        assert small.mean < large.mean
        # fixed setup cost dominates the small count (sub-linear shape)
        assert large.mean < small.mean * 10

    def test_fig10_view_scan_beats_join(self):
        results = run_fig10(scales=(20,), repetitions=2)
        for qid, result in results.items():
            view = result.get("View Scan", 20)
            join = result.get("Join Algorithm", 20)
            assert view.mean < join.mean, qid

    def test_fig13_matrix(self):
        text = run_fig13()
        for name in ("VoltDB", "Synergy", "MVCC-A", "MVCC-UA", "Baseline"):
            assert name in text

    def test_table1_static(self):
        text = run_table1()
        assert "read committed" in text


class TestCliErrors:
    """The bench CLI must refuse nonsense loudly, not run nothing or
    silently drop flags."""

    def _error(self, argv):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        return exc

    def test_unknown_suite_exits_nonzero_listing_valid(self, capsys):
        self._error(["--only", "nosuchsuite"])
        err = capsys.readouterr().err
        assert "unknown experiments" in err
        assert "nosuchsuite" in err
        # the valid suites are listed so the caller can self-correct
        for suite in ("query", "federation", "concurrency"):
            assert suite in err

    def test_empty_selection_exits_nonzero(self, capsys):
        self._error(["--only", " , "])
        err = capsys.readouterr().err
        assert "no experiments" in err
        assert "federation" in err

    def test_suite_flag_with_other_only_is_rejected(self, capsys):
        self._error(["--only", "query", "--federation-scale", "99"])
        err = capsys.readouterr().err
        assert "--federation-scale" in err
        assert "federation" in err

    def test_multiple_contradictory_flags_all_reported(self, capsys):
        self._error([
            "--only", "table1",
            "--query-reps", "9", "--serving-ops", "1",
        ])
        err = capsys.readouterr().err
        assert "--query-reps" in err
        assert "--serving-ops" in err

    def test_suite_flag_with_matching_only_is_accepted(self, capsys):
        # table1 is static; adding its own suite's flag must not error
        from repro.bench.__main__ import main

        assert main(["--only", "table1", "--quiet"]) == 0
        capsys.readouterr()

    def test_default_flags_with_only_are_fine(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--only", "fig13", "--quiet"]) == 0
        capsys.readouterr()
