"""Property test: compaction under tombstones vs a dict reference model.

Random (seeded) sequences of puts, row deletes, column deletes, flushes
and major compactions are applied both to a real :class:`Region` and to
a plain-dict model of HBase visibility semantics (newest ``max_versions``
versions newer than every covering tombstone). After every compaction —
and at the end — the region's scan, point reads, row count and size
accounting must match the model row for row. This pins the guarantee
chaos recovery leans on: compaction may drop tombstones and shadowed
versions, but never a visible cell.
"""

from __future__ import annotations

import random

import pytest

from repro.hbase.region import Region

CF = b"cf"
QUALIFIERS = [b"qa", b"qb", b"qc"]
ROWS = [b"r%02d" % i for i in range(8)]


class ReferenceModel:
    """Dict-based oracle for single-region visibility semantics."""

    def __init__(self, max_versions: int) -> None:
        self.max_versions = max_versions
        self.cells: dict[bytes, dict[bytes, list[tuple[int, bytes]]]] = {}
        self.row_tombstones: dict[bytes, int] = {}
        self.col_tombstones: dict[tuple[bytes, bytes], int] = {}

    def put(self, row: bytes, qualifier: bytes, ts: int, value: bytes) -> None:
        self.cells.setdefault(row, {}).setdefault(qualifier, []).append(
            (ts, value)
        )

    def delete_row(self, row: bytes, ts: int) -> None:
        prev = self.row_tombstones.get(row)
        if prev is None or ts > prev:
            self.row_tombstones[row] = ts

    def delete_column(self, row: bytes, qualifier: bytes, ts: int) -> None:
        key = (row, qualifier)
        prev = self.col_tombstones.get(key)
        if prev is None or ts > prev:
            self.col_tombstones[key] = ts

    def compact(self) -> None:
        """Major compaction folds visibility into the physical state:
        shadowed versions and all tombstones disappear."""
        visible = self.visible()
        self.cells = {
            row: {q: list(versions) for (_f, q), versions in cols.items()}
            for row, cols in visible.items()
        }
        self.row_tombstones = {}
        self.col_tombstones = {}

    def visible(
        self,
    ) -> dict[bytes, dict[tuple[bytes, bytes], list[tuple[int, bytes]]]]:
        """row -> (family, qualifier) -> newest-first visible versions."""
        out: dict[bytes, dict[tuple[bytes, bytes], list[tuple[int, bytes]]]] = {}
        for row in sorted(self.cells):
            row_ts = self.row_tombstones.get(row)
            cols: dict[tuple[bytes, bytes], list[tuple[int, bytes]]] = {}
            for qualifier, versions in self.cells[row].items():
                col_ts = self.col_tombstones.get((row, qualifier))
                kept = [
                    (ts, value)
                    for ts, value in sorted(versions, reverse=True)
                    if (row_ts is None or ts > row_ts)
                    and (col_ts is None or ts > col_ts)
                ]
                kept = kept[: self.max_versions]
                if kept:
                    cols[(CF, qualifier)] = kept
            if cols:
                out[row] = cols
        return out


def build_region(max_versions: int) -> Region:
    return Region(
        table_name="prop",
        start_key=b"",
        end_key=None,
        max_versions=max_versions,
        flush_threshold_rows=10_000,  # flushes only when the test says so
    )


def assert_region_matches_model(region: Region, model: ReferenceModel) -> None:
    expected = model.visible()
    actual = {
        row: dict(result._cells)
        for row, result in region.scan(max_versions=region.max_versions)
        if result is not None
    }
    assert actual == expected
    assert region.row_count() == len(expected)
    # point reads agree with the streaming scan for present & absent rows
    for row in ROWS:
        result = region.read_row(row, max_versions=region.max_versions)
        if row in expected:
            assert result is not None and dict(result._cells) == expected[row]
        else:
            assert result is None


@pytest.mark.parametrize("max_versions", [1, 3])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_put_delete_compact_sequences(seed: int, max_versions: int):
    rng = random.Random(1000 * max_versions + seed)
    region = build_region(max_versions)
    model = ReferenceModel(max_versions)
    ts = 0
    compactions = 0
    for step in range(400):
        r = rng.random()
        row = rng.choice(ROWS)
        qualifier = rng.choice(QUALIFIERS)
        ts += 1
        if r < 0.55:
            value = b"v%d" % ts
            region.put_row(row, [(CF, qualifier, value, ts)], ts)
            model.put(row, qualifier, ts, value)
        elif r < 0.70:
            region.delete_row(row, None, ts)
            model.delete_row(row, ts)
        elif r < 0.82:
            region.delete_row(row, [(CF, qualifier)], ts)
            model.delete_column(row, qualifier, ts)
        elif r < 0.94:
            region.flush()  # physical reshuffle, no visibility change
        else:
            region.major_compact()
            model.compact()
            compactions += 1
            assert_region_matches_model(region, model)
            # compaction recomputes the exact size; the approximate
            # accounting must land on the same number
            assert region._approx_size_bytes == region._component_size_bytes()
            assert len(region.hfiles) <= 1
    assert compactions > 0  # the sequence genuinely exercised compaction
    region.major_compact()
    model.compact()
    assert_region_matches_model(region, model)


def test_compaction_drops_tombstones_but_preserves_visible_rows():
    """Deterministic spot check of the exact property chaos recovery
    relies on: after deletes + compaction, deleted rows are physically
    gone while surviving rows keep their newest values."""
    region = build_region(1)
    model = ReferenceModel(1)
    for i, row in enumerate(ROWS):
        region.put_row(row, [(CF, b"qa", b"old", i + 1)], i + 1)
        model.put(row, b"qa", i + 1, b"old")
    region.put_row(ROWS[0], [(CF, b"qa", b"new", 100)], 100)
    model.put(ROWS[0], b"qa", 100, b"new")
    region.delete_row(ROWS[1], None, 101)
    model.delete_row(ROWS[1], 101)
    region.delete_row(ROWS[2], [(CF, b"qa")], 102)
    model.delete_column(ROWS[2], b"qa", 102)
    region.major_compact()
    model.compact()
    assert_region_matches_model(region, model)
    assert region.read_row(ROWS[0]).value(CF, b"qa") == b"new"
    size_after = region._approx_size_bytes
    assert size_after == region._component_size_bytes()
    # a second compaction is a no-op on an already-folded region
    region.major_compact()
    assert region._approx_size_bytes == size_after
