"""VoltDB engine: tables, partition-scheme support matrix, execution."""

import pytest

from repro.errors import UnsupportedStatementError
from repro.relational.company import company_schema
from repro.sim.clock import Simulation
from repro.tpcw.queries import JOIN_QUERIES, VOLTDB_UNSUPPORTED
from repro.tpcw.schema import tpcw_schema
from repro.tpcw.workload import tpcw_workload
from repro.tpcw.writes import WRITE_STATEMENTS
from repro.voltdb.system import TPCW_SCHEMES, PartitionScheme, VoltDBSystem
from repro.voltdb.table import VoltTable
from repro.systems.voltdb_sys import VoltDBEvaluatedSystem


class TestVoltTable:
    def _table(self):
        return VoltTable(company_schema().relation("Employee"))

    def test_insert_get(self):
        t = self._table()
        t.insert({"EID": 1, "EName": "a", "EHome_AID": 1, "EOffice_AID": 1, "E_DNo": 1})
        assert t.get((1,))["EName"] == "a"

    def test_index_lookup_tracks_updates(self):
        t = self._table()
        t.create_index("E_DNo")
        t.insert({"EID": 1, "EName": "a", "EHome_AID": 1, "EOffice_AID": 1, "E_DNo": 1})
        t.insert({"EID": 2, "EName": "b", "EHome_AID": 1, "EOffice_AID": 1, "E_DNo": 2})
        assert [r["EID"] for r in t.lookup("E_DNo", 1)] == [1]
        t.update((1,), {"E_DNo": 2})
        assert sorted(r["EID"] for r in t.lookup("E_DNo", 2)) == [1, 2]

    def test_delete_and_size(self):
        t = self._table()
        t.insert({"EID": 1, "EName": "a", "EHome_AID": 1, "EOffice_AID": 1, "E_DNo": 1})
        size = t.size_bytes
        assert size > 0
        assert t.delete((1,))
        assert t.size_bytes == 0
        assert not t.delete((1,))

    def test_insert_overwrite_replaces(self):
        t = self._table()
        t.insert({"EID": 1, "EName": "a", "EHome_AID": 1, "EOffice_AID": 1, "E_DNo": 1})
        t.insert({"EID": 1, "EName": "b", "EHome_AID": 1, "EOffice_AID": 1, "E_DNo": 1})
        assert len(t) == 1
        assert t.get((1,))["EName"] == "b"


@pytest.fixture(scope="module")
def volt():
    system = VoltDBEvaluatedSystem(tpcw_schema(), tpcw_workload(),
                                   sim=Simulation())
    from repro.tpcw.generator import TpcwDataGenerator

    gen = TpcwDataGenerator(20, seed=3)
    system.load(gen.all_rows())
    system.finish_load()
    return system, gen


class TestSupportMatrix:
    def test_unsupported_queries_match_paper(self, volt):
        """Fig. 12: Q3, Q7, Q9, Q10 carry an X."""
        system, _ = volt
        unsupported = {q for q in JOIN_QUERIES if not system.supports(q)}
        assert unsupported == set(VOLTDB_UNSUPPORTED)

    def test_all_writes_supported(self, volt):
        system, _ = volt
        assert all(system.supports(w) for w in WRITE_STATEMENTS)

    def test_q11_needs_scheme2(self, volt):
        system, _ = volt
        scheme = system.scheme_for(JOIN_QUERIES["Q11"])
        assert scheme is not None and scheme.name == "scheme2"

    def test_q4_needs_scheme3(self, volt):
        system, _ = volt
        scheme = system.scheme_for(JOIN_QUERIES["Q4"])
        assert scheme is not None and scheme.name == "scheme3"

    def test_unsupported_execution_raises(self, volt):
        system, gen = volt
        with pytest.raises(UnsupportedStatementError):
            system.execute(JOIN_QUERIES["Q7"], gen.params_for_query("Q7"))


class TestExecution:
    def test_q1_returns_order_lines(self, volt):
        system, gen = volt
        rows = system.execute(JOIN_QUERIES["Q1"], (5,))
        assert rows and all(r["ol_o_id"] == 5 for r in rows)
        assert all(r["i_id"] == r["ol_i_id"] for r in rows)

    def test_q2_latest_order(self, volt):
        system, gen = volt
        rows = system.execute(JOIN_QUERIES["Q2"], (gen.customer_uname(3),))
        assert len(rows) == 1
        assert rows[0]["o_c_id"] == 3

    def test_q11_grouping(self, volt):
        system, gen = volt
        rows = system.execute(JOIN_QUERIES["Q11"], (7,))
        assert len(rows) <= 5
        for r in rows:
            assert r["ol_i_id"] != 7

    def test_write_and_read_back(self, volt):
        system, _ = volt
        system.execute(WRITE_STATEMENTS["W6"], (999, 1.5))
        system.execute(WRITE_STATEMENTS["W11"], (2.5, 999))
        assert system.engine.tables["Shopping_cart"].get((999,))["sc_time"] == 2.5

    def test_single_partition_cheaper_than_multipart(self):
        system = VoltDBSystem(tpcw_schema(), Simulation(), TPCW_SCHEMES[0])
        from repro.tpcw.generator import TpcwDataGenerator

        for rel, row in TpcwDataGenerator(20, seed=3).all_rows():
            system.load_row(rel, row)
        _, single = system.timed("SELECT * FROM Item WHERE i_id = ?", (5,))
        _, multi = system.timed("SELECT * FROM Item WHERE i_title = ?", ("zzz",))
        assert multi > single

    def test_replication_multiplies_size(self):
        scheme_all_partitioned = TPCW_SCHEMES[0]
        sim = Simulation()
        system = VoltDBSystem(tpcw_schema(), sim, scheme_all_partitioned)
        from repro.tpcw.generator import TpcwDataGenerator

        for rel, row in TpcwDataGenerator(20, seed=3).all_rows():
            system.load_row(rel, row)
        partitioned_size = system.db_size_bytes()
        system.set_scheme(PartitionScheme("nothing-partitioned", {}))
        assert system.db_size_bytes() > partitioned_size
