"""Federation mediator suite.

The mediator fronts all five evaluated systems at once; these tests pin
the three properties the bench's federation sweep relies on:

* **row equivalence** — a statement routed through the mediator (whole
  to one backend, or split into per-binding fragments merged through
  the streaming operators) returns exactly the rows a single system
  returns, including the VoltDB-unsupported joins that only execute
  federated via split;
* **determinism** — two mediators built from the same seed produce
  byte-identical routing decision logs and route records;
* **write safety** — writes broadcast to every supporting backend (so
  the backends stay convergent), and the session retry path refuses to
  re-execute a write that may already have applied on a backend whose
  sessions cannot roll back.

Seed 7 is shared with the equivalence suite: all engines agree on the
tie-prone Q11 top-5 there, so full-row canonicalization is safe.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.tpcw_lab import SYSTEM_NAMES, TpcwLab
from repro.errors import ReproError, TransactionError
from repro.federation import (
    FederationError,
    FederationWriteHazardError,
    RoutingAdvisor,
    build_mediator,
)
from repro.sim.scheduler import DeterministicScheduler, run_transaction
from repro.tpcw.queries import JOIN_QUERIES, VOLTDB_UNSUPPORTED
from repro.tpcw.writes import WRITE_STATEMENTS

SCALE = 25
SEED = 7

QUERY_KEYS = {
    "Q1": ("ol_o_id", "ol_id", "i_id"),
    "Q2": ("o_id", "c_id"),
    "Q3": ("c_id", "addr_id", "co_id"),
    "Q4": ("i_id", "a_id"),
    "Q5": ("i_id", "a_id"),
    "Q6": ("i_id", "a_id"),
    "Q7": ("o_id", "c_id"),
    "Q8": ("scl_sc_id", "scl_i_id", "i_id"),
    "Q9": ("i_id",),
    "Q10": ("i_id",),  # aggregate naming differs per view rewrite
    "Q11": ("ol_i_id",),
}


def canonical(qid: str, rows):
    return sorted(tuple(r.get(k) for k in QUERY_KEYS[qid]) for r in rows)


def query_battery(system, lab, reps=(0, 1)):
    out = {}
    for qid in JOIN_QUERIES:
        if not system.supports(qid):
            continue
        for rep in reps:
            params = lab.generator.params_for_query(qid, rep)
            rows = system.execute(system.statement(qid), params)
            out[(qid, rep)] = canonical(qid, rows)
    return out


@pytest.fixture(scope="module")
def lab():
    return TpcwLab(num_customers=SCALE, repetitions=2, seed=SEED)


@pytest.fixture(scope="module")
def backends(lab):
    out = {}
    for name in SYSTEM_NAMES:
        system = lab.build_system(name)
        lab.populate(system)
        out[name] = system
    return out


@pytest.fixture(scope="module")
def mediator(lab, backends):
    return build_mediator(backends, lab.schema, lab.workload, seed=SEED)


def small_federation(names, num_customers=10):
    """A fresh small lab plus a mediator over just ``names`` — for
    tests that mutate state and must not disturb the module fixtures."""
    lab = TpcwLab(num_customers=num_customers, repetitions=1, seed=SEED)
    systems = {}
    for name in names:
        system = lab.build_system(name)
        lab.populate(system)
        systems[name] = system
    mediator = build_mediator(systems, lab.schema, lab.workload, seed=SEED)
    return lab, systems, mediator


# --------------------------------------------------------------- routing
class TestRoutedQueries:
    def test_mediator_supports_every_workload_statement(self, mediator):
        for sid in list(JOIN_QUERIES) + list(WRITE_STATEMENTS):
            assert mediator.supports(sid), sid

    def test_routed_battery_matches_single_system(
        self, mediator, backends, lab
    ):
        """Auto-routed execution is row-for-row identical to a pinned
        single system, for all 11 queries — including the four VoltDB
        cannot run whole."""
        routed = query_battery(mediator, lab)
        reference = query_battery(backends["Synergy"], lab)
        assert set(routed) == set(reference)
        for key in reference:
            assert routed[key] == reference[key], (
                f"mediator disagrees with Synergy on {key}"
            )

    def test_split_battery_matches_single_system(self, backends, lab):
        """Forcing decomposition: every multi-binding query splits into
        per-binding fragments, possibly on different backends, and the
        streaming merge reproduces the single-system rows."""
        split = build_mediator(
            backends, lab.schema, lab.workload, seed=SEED, mode="split"
        )
        battery = query_battery(split, lab)
        reference = query_battery(backends["Synergy"], lab)
        assert battery == reference
        split_qids = {
            rec.statement_id for rec in split.route_log if rec.mode == "split"
        }
        assert set(JOIN_QUERIES) <= split_qids

    def test_route_log_records_every_statement(self, mediator):
        assert mediator.route_log
        for rec in mediator.route_log:
            assert rec.mode in ("whole", "split", "broadcast")
            assert rec.assignments
            for a in rec.assignments:
                assert a["backend"] in mediator.backends
            d = rec.to_dict()  # JSON-friendly
            json.dumps(d)

    def test_voltdb_unsupported_join_runs_federated(self, backends, lab):
        """Pinned to VoltDB the paper's 3-way joins are unsupported in
        whole mode; unpinned, the mediator still answers them (whole on
        a Phoenix backend, or split across fragments VoltDB can serve)."""
        pinned = build_mediator(
            backends, lab.schema, lab.workload,
            seed=SEED, mode="whole", pin="VoltDB",
        )
        for qid in VOLTDB_UNSUPPORTED:
            assert not pinned.supports(qid)
            with pytest.raises(FederationError):
                pinned.execute(pinned.statement(qid),
                               lab.generator.params_for_query(qid, 0))

    def test_pin_restricts_every_route(self, backends, lab):
        pinned = build_mediator(
            backends, lab.schema, lab.workload,
            seed=SEED, mode="whole", pin="MVCC-A",
        )
        battery = query_battery(pinned, lab)
        assert battery == query_battery(backends["MVCC-A"], lab)
        assert pinned.route_log
        for rec in pinned.route_log:
            assert all(a["backend"] == "MVCC-A" for a in rec.assignments)


# --------------------------------------------------------------- advisor
class TestRoutingAdvisor:
    def test_estimate_wins_until_enough_observations(self):
        advisor = RoutingAdvisor(seed=SEED, min_observations=3)
        advisor.observe("Q1", "A", 50.0)
        advisor.observe("Q1", "A", 50.0)
        cost, overridden = advisor.advised_cost("Q1", "A", 1.0)
        assert (cost, overridden) == (1.0, False)

    def test_diverged_ewma_overrides_and_reroutes(self):
        """A backend whose observed latency diverges from its estimate
        loses the route to the runner-up once the EWMA is trusted."""
        advisor = RoutingAdvisor(seed=SEED, min_observations=3, divergence=2.0)
        candidates = [("A", 1.0), ("B", 5.0)]
        for _ in range(3):
            assert advisor.choose("Q1", candidates, 0.0) == "A"
            advisor.observe("Q1", "A", 50.0)  # 50x worse than modeled
        assert advisor.choose("Q1", candidates, 0.0) == "B"
        last = advisor.decision_log[-1]
        assert last.rerouted == ("A",)
        assert last.costs["A"] == pytest.approx(50.0)

    def test_faster_than_modeled_backend_steals_the_route(self):
        advisor = RoutingAdvisor(seed=SEED, min_observations=3, divergence=2.0)
        for _ in range(3):
            advisor.observe("Q1", "B", 0.5)  # modeled 5.0, observed 0.5
        assert advisor.choose("Q1", [("A", 1.0), ("B", 5.0)], 0.0) == "B"

    def test_epsilon_exploration_is_seed_deterministic(self):
        logs = []
        for _ in range(2):
            advisor = RoutingAdvisor(seed=SEED, epsilon=0.5)
            for i in range(20):
                advisor.choose("Q1", [("A", 1.0), ("B", 5.0)], float(i))
            logs.append(json.dumps(advisor.log_dicts()))
        assert logs[0] == logs[1]
        assert any(
            d["explored"] for d in json.loads(logs[0])
        ), "epsilon=0.5 over 20 draws never explored"

    def test_online_rerouting_spreads_statements_in_practice(
        self, backends, lab
    ):
        """Integration: after enough repetitions the observed EWMAs
        override the static estimates and at least one statement routes
        to more than one backend over its lifetime."""
        mediator = build_mediator(
            backends, lab.schema, lab.workload, seed=SEED
        )
        for rep in range(6):
            for qid in JOIN_QUERIES:
                params = lab.generator.params_for_query(qid, rep)
                mediator.execute(mediator.statement(qid), params)
        assert any(d.rerouted for d in mediator.advisor.decision_log)
        chosen: dict[str, set] = {}
        for d in mediator.advisor.decision_log:
            chosen.setdefault(d.statement_id, set()).add(d.chosen)
        assert any(len(s) >= 2 for s in chosen.values())


class TestDeterminism:
    def test_decision_and_route_logs_identical_across_fresh_builds(self):
        """Two from-scratch federations (same seed) produce
        byte-identical advisor decision logs and route records."""
        logs, routes = [], []
        for _ in range(2):
            lab, _, mediator = small_federation(SYSTEM_NAMES, num_customers=10)
            for rep in range(2):
                for qid in JOIN_QUERIES:
                    params = lab.generator.params_for_query(qid, rep)
                    mediator.execute(mediator.statement(qid), params)
            logs.append(json.dumps(mediator.advisor.log_dicts()))
            routes.append(
                json.dumps([r.to_dict() for r in mediator.route_log])
            )
        assert logs[0] == logs[1]
        assert routes[0] == routes[1]


# --------------------------------------------------------------- writes
class TestBroadcastWrites:
    """Declared after the read-only classes on purpose: these mutate the
    module-scope backends (in lock-step, which is the property)."""

    def test_broadcast_write_applies_on_every_backend(
        self, mediator, backends
    ):
        mediator.execute("W9", (4242, 3))
        rec = mediator.route_log[-1]
        assert rec.mode == "broadcast"
        assert {a["backend"] for a in rec.assignments} == set(backends)
        for name, system in backends.items():
            rows = system.execute("SELECT * FROM Item WHERE i_id = ?", (3,))
            assert rows[0]["i_stock"] == 4242, name

    def test_scheduled_multi_client_session_run_converges(
        self, mediator, backends, lab
    ):
        """Four federated clients through the deterministic scheduler:
        every transaction commits, execution genuinely interleaves, and
        afterwards all five backends agree row for row on the full query
        battery (broadcast keeps them convergent)."""
        per_client = []
        for c in range(4):
            i_id = c_id = sc_id = c + 1
            txns = []
            for t in range(3):
                stamp = 1000 * (c + 1) + t
                txns.append([
                    ("SELECT * FROM Item WHERE i_id = ?", (i_id,)),
                    (WRITE_STATEMENTS["W9"], (stamp, i_id)),
                ])
                txns.append([
                    (WRITE_STATEMENTS["W13"],
                     (float(stamp), float(stamp) / 2, float(t), c_id)),
                ])
                txns.append([
                    (WRITE_STATEMENTS["W11"], (float(stamp), sc_id)),
                ])
            per_client.append(txns)

        scheduler = DeterministicScheduler(mediator.sim)
        for i, txns in enumerate(per_client):
            session = mediator.open_session(f"c{i}")

            def program(client, session=session, txns=txns):
                for txn in txns:
                    yield from run_transaction(client, session, txn)

            scheduler.add_client(f"c{i}", program)
        report = scheduler.run()

        total = sum(len(t) for t in per_client)
        assert report.committed == total
        assert report.steps > total  # genuinely interleaved
        batteries = {
            name: query_battery(system, lab)
            for name, system in backends.items()
        }
        reference = query_battery(mediator, lab)
        for name, battery in batteries.items():
            for key, rows in battery.items():
                assert rows == reference[key], (
                    f"{name} diverged from the federation on {key}"
                )


class TestWriteHazard:
    def test_abort_poisons_write_applied_on_no_rollback_backend(self):
        """Synergy sessions auto-commit (no rollback): after an aborted
        federated transaction the insert has applied there but not on
        the MVCC backend, and re-executing it must raise instead of
        double-applying."""
        lab, systems, mediator = small_federation(("Synergy", "MVCC-A"))
        probe = (
            "SELECT * FROM Shopping_cart_line "
            "WHERE scl_sc_id = ? and scl_i_id = ?"
        )
        key = (lab.generator.num_carts + 50, 1)
        session = mediator.open_session("c0")
        assert session.rolls_back_on_abort is False

        session.begin()
        session.execute("W7", key + (3,))
        session.abort()
        assert len(systems["Synergy"].execute(probe, key)) == 1
        assert len(systems["MVCC-A"].execute(probe, key)) == 0

        with pytest.raises(FederationWriteHazardError):
            session.execute("W7", key + (3,))
        # still applied exactly once — the hazard blocked the double-apply
        assert len(systems["Synergy"].execute(probe, key)) == 1

        # a *different* write is not poisoned
        other = (key[0] + 1, 1)
        session.begin()
        session.execute("W7", other + (3,))
        session.commit()
        assert len(systems["Synergy"].execute(probe, other)) == 1
        assert len(systems["MVCC-A"].execute(probe, other)) == 1

    def test_hazard_error_is_not_retried_as_a_conflict(self):
        """The scheduler's transaction loop retries TransactionError;
        the hazard must not be one, or a retry loop would spin on it."""
        assert issubclass(FederationWriteHazardError, ReproError)
        assert not issubclass(FederationWriteHazardError, TransactionError)

    def test_rollback_capable_federation_can_retry_after_abort(self):
        """With only MVCC backends every session rolls back on abort, so
        nothing is poisoned and the classic abort-then-retry works."""
        lab, systems, mediator = small_federation(("MVCC-A", "MVCC-UA"))
        probe = (
            "SELECT * FROM Shopping_cart_line "
            "WHERE scl_sc_id = ? and scl_i_id = ?"
        )
        key = (lab.generator.num_carts + 50, 1)
        session = mediator.open_session("c0")
        assert session.rolls_back_on_abort is True

        session.begin()
        session.execute("W7", key + (3,))
        session.abort()
        for system in systems.values():
            assert len(system.execute(probe, key)) == 0

        session.begin()
        session.execute("W7", key + (3,))  # retry is safe: nothing applied
        session.commit()
        for system in systems.values():
            assert len(system.execute(probe, key)) == 1


# --------------------------------------------------------------- errors
class TestFederationErrors:
    def test_no_backends_rejected(self, lab):
        with pytest.raises(FederationError):
            build_mediator({}, lab.schema, lab.workload)

    def test_unknown_mode_rejected(self, lab, backends):
        with pytest.raises(FederationError):
            build_mediator(backends, lab.schema, lab.workload, mode="bogus")

    def test_unregistered_pin_rejected(self, lab, backends):
        with pytest.raises(FederationError):
            build_mediator(backends, lab.schema, lab.workload, pin="Nope")

    def test_unknown_statement_id_unsupported(self, mediator):
        assert not mediator.supports("NOPE")
