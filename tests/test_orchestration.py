"""Declarative orchestration: plans, diffs, fenced steps, rollback."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig, ReplicationConfig
from repro.errors import (
    ClusterConfigError,
    PlanValidationError,
    RegionUnavailableError,
    StaleStepError,
)
from repro.hbase.client import HBaseClient
from repro.hbase.cluster import HBaseCluster
from repro.hbase.ops import Put
from repro.orchestration import (
    AddServers,
    ClusterPlan,
    DrainServer,
    MergeRegions,
    MoveRegion,
    Orchestrator,
    PoisonStep,
    Rebalance,
    SetReplicas,
    SplitRegion,
    TablePlan,
    cluster_snapshot,
    diff,
    verify_cluster,
)
from repro.sim.clock import Simulation

FAM = b"cf"


def build_cluster(servers=2, replication=None, rows=40, splits=None):
    sim = Simulation(seed=42)
    config = ClusterConfig(num_region_servers=servers, seed=42)
    if replication is not None:
        config = ClusterConfig(
            num_region_servers=servers, seed=42, replication=replication,
        )
    cluster = HBaseCluster(sim, config)
    client = HBaseClient(cluster)
    table = client.create_table("t", families=(FAM,), split_keys=splits)
    for i in range(rows):
        table.put(Put(b"%05d" % i).add(FAM, b"q", b"v%05d" % i))
    return cluster, client


# ------------------------------------------------------------ config guards
class TestConfigValidation:
    def test_rejects_nonpositive_server_count(self):
        with pytest.raises(ClusterConfigError):
            ClusterConfig(num_region_servers=0)

    def test_rejects_nonpositive_regions_per_table(self):
        with pytest.raises(ClusterConfigError):
            ClusterConfig(regions_per_table=0)

    def test_rejects_nonpositive_split_threshold(self):
        with pytest.raises(ClusterConfigError):
            ClusterConfig(region_split_threshold_bytes=0)
        with pytest.raises(ClusterConfigError):
            ClusterConfig(region_split_threshold_bytes=-1)
        # None disables auto-splitting and stays legal
        ClusterConfig(region_split_threshold_bytes=None)

    def test_rejects_zero_location_retries(self):
        with pytest.raises(ClusterConfigError):
            ClusterConfig(max_location_retries=0)

    def test_rejects_bad_replication_config(self):
        with pytest.raises(ClusterConfigError):
            ReplicationConfig(replica_count=0)
        with pytest.raises(ClusterConfigError):
            ReplicationConfig(ship_batch_entries=0)
        with pytest.raises(ClusterConfigError):
            ReplicationConfig(ack_mode="quorum")
        with pytest.raises(ClusterConfigError):
            ReplicationConfig(staleness_bound_entries=-1)


# ------------------------------------------------------------ membership
class TestMembership:
    def test_add_servers_rejects_existing_name(self):
        cluster, _ = build_cluster()
        with pytest.raises(ClusterConfigError, match="already exists"):
            cluster.add_servers(names=["rs1"])
        # the failed call must not have half-applied
        assert [s.name for s in cluster.servers] == ["rs1", "rs2"]

    def test_add_servers_rejects_duplicate_in_request(self):
        cluster, _ = build_cluster()
        with pytest.raises(ClusterConfigError, match="duplicate"):
            cluster.add_servers(names=["rs9", "rs9"])
        assert len(cluster.servers) == 2

    def test_generated_names_skip_explicit_members(self):
        cluster, _ = build_cluster()
        cluster.add_servers(names=["rs3"])
        fresh = cluster.add_servers(1)
        assert fresh[0].name == "rs4"

    def test_remove_server_refuses_nonempty(self):
        cluster, _ = build_cluster()
        hosting = next(s for s in cluster.servers if s.regions)
        with pytest.raises(ClusterConfigError, match="drain"):
            cluster.remove_server(hosting)

    def test_drain_then_remove(self):
        cluster, _ = build_cluster()
        hosting = next(s for s in cluster.servers if s.regions)
        moves = cluster.drain_server(hosting)
        assert moves and not hosting.regions
        cluster.remove_server(hosting)
        assert hosting not in cluster.servers

    def test_drain_dead_server_raises(self):
        cluster, _ = build_cluster()
        victim = cluster.servers[0]
        victim.crash()
        with pytest.raises(RegionUnavailableError):
            cluster.drain_server(victim)


# ------------------------------------------------------------ plan validation
class TestPlanValidation:
    def test_table_plan_guards(self):
        with pytest.raises(PlanValidationError):
            TablePlan(replicas=0)
        with pytest.raises(PlanValidationError):
            TablePlan(split_points=(b"",))
        with pytest.raises(PlanValidationError):
            TablePlan(split_points=(b"b", b"a"))
        with pytest.raises(PlanValidationError):
            TablePlan(replicas=2, split_points=(b"m",))

    def test_cluster_plan_guards(self):
        with pytest.raises(PlanValidationError):
            ClusterPlan(servers=0)
        with pytest.raises(PlanValidationError):
            ClusterPlan(servers=2, balance="random")
        with pytest.raises(PlanValidationError):
            ClusterPlan(servers=2, drain=("rs1", "rs1"))
        with pytest.raises(PlanValidationError):
            # anti-affinity needs one server per copy
            ClusterPlan(servers=2, tables={"t": TablePlan(replicas=3)})

    def test_diff_rejects_unknown_targets(self):
        cluster, _ = build_cluster()
        with pytest.raises(PlanValidationError):
            diff(ClusterPlan(servers=2, drain=("rs9",)), cluster)
        with pytest.raises(PlanValidationError):
            diff(ClusterPlan(servers=2, tables={"nope": TablePlan()}), cluster)

    def test_diff_rejects_enabling_replication_on_nonempty_table(self):
        cluster, _ = build_cluster(rows=10)
        plan = ClusterPlan(servers=2, tables={"t": TablePlan(replicas=2)})
        with pytest.raises(PlanValidationError, match="non-empty"):
            diff(plan, cluster)

    def test_diff_is_empty_when_plan_matches_cluster(self):
        cluster, _ = build_cluster()
        assert diff(ClusterPlan(servers=2), cluster) == []

    def test_diff_orders_steps_canonically(self):
        cluster, _ = build_cluster(
            servers=3, rows=40, splits=[b"%05d" % 20]
        )
        plan = ClusterPlan(
            servers=4,
            tables={"t": TablePlan(split_points=(b"%05d" % 10,))},
            drain=("rs3",),
            balance="round-robin",
        )
        kinds = [s.kind for s in diff(plan, cluster)]
        assert kinds == [
            "add-servers", "add-servers", "drain-server",
            "split-region", "rebalance",
        ] or kinds == [
            "add-servers", "drain-server", "split-region", "rebalance",
        ]
        # draining rs3 removes capacity, so the deficit is 2 servers
        steps = diff(plan, cluster)
        assert steps[0].kind == "add-servers" and steps[0].count == 2

    def test_diff_scale_in_retires_latest_members(self):
        cluster, _ = build_cluster(servers=4)
        steps = diff(ClusterPlan(servers=2, balance=None), cluster)
        assert [s.kind for s in steps] == ["drain-server", "drain-server"]
        assert {s.name for s in steps} == {"rs4", "rs3"}


# ------------------------------------------------------------ step fencing
class TestFencing:
    def test_apply_without_fence_is_stale(self):
        cluster, _ = build_cluster()
        step = AddServers(1)
        with pytest.raises(StaleStepError, match="without a fence"):
            step.apply(cluster)

    def test_layout_epoch_moves_between_fence_and_apply(self):
        cluster, _ = build_cluster()
        step = AddServers(1)
        step.fence(cluster)
        cluster.add_servers(1)  # concurrent topology change
        with pytest.raises(StaleStepError, match="layout epoch"):
            step.apply(cluster)

    def test_move_region_fence_requires_live_target(self):
        cluster, _ = build_cluster()
        region = cluster.tables["t"].regions[0]
        target = next(
            s for s in cluster.servers
            if s is not cluster.server_for(region)
        )
        target.crash()
        step = MoveRegion("t", region.start_key, target.name)
        with pytest.raises(RegionUnavailableError):
            step.fence(cluster)

    def test_move_region_fence_rejects_draining_target(self):
        cluster, _ = build_cluster(servers=3)
        region = cluster.tables["t"].regions[0]
        target = next(
            s for s in cluster.servers
            if s is not cluster.server_for(region)
        )
        cluster.drain_server(target)
        step = MoveRegion("t", region.start_key, target.name)
        with pytest.raises(StaleStepError, match="draining"):
            step.fence(cluster)

    def test_split_fence_rejects_existing_boundary(self):
        cluster, _ = build_cluster(splits=[b"%05d" % 20])
        step = SplitRegion("t", b"%05d" % 20)
        with pytest.raises(StaleStepError, match="boundary"):
            step.fence(cluster)

    def test_dissolved_boundary_is_stale(self):
        cluster, _ = build_cluster(splits=[b"%05d" % 20])
        step = MoveRegion("t", b"%05d" % 20, "rs1")
        step.fence(cluster)
        low = cluster.tables["t"].regions[0]
        high = cluster.tables["t"].regions[1]
        cluster.merge_regions(low, high)
        with pytest.raises(StaleStepError):
            step.fence(cluster)


# ------------------------------------------------------------ rollback
def assert_rollback_restores_state(cluster, steps, verify_tables=None):
    """Poison a stage after ``steps`` and check the unwind lands exactly
    on the pre-rollout state — row-for-row and by layout fingerprint."""
    rows_before = cluster_snapshot(cluster)
    layout_before = cluster.layout_fingerprint()
    epoch_before = cluster.layout_epoch
    orch = Orchestrator(
        cluster,
        stages=[("1:drill", list(steps) + [PoisonStep()])],
        verify_tables=verify_tables,
    )
    report = orch.run()
    assert report.status == "rolled-back"
    assert report.committed_stages == 0
    assert cluster_snapshot(cluster) == rows_before
    assert cluster.layout_fingerprint() == layout_before
    # the epoch only ever moves forward: rollback is new history, not
    # time travel
    assert cluster.layout_epoch >= epoch_before
    transient, fatal = verify_cluster(cluster)
    assert fatal == [] and transient == []


class TestRollback:
    def test_add_servers_rolls_back(self):
        cluster, _ = build_cluster()
        assert_rollback_restores_state(cluster, [AddServers(2)])
        assert len(cluster.servers) == 2

    def test_split_rolls_back_via_merge(self):
        cluster, _ = build_cluster()
        assert_rollback_restores_state(
            cluster, [SplitRegion("t", b"%05d" % 13)]
        )
        assert len(cluster.tables["t"].regions) == 1

    def test_merge_rolls_back_via_split(self):
        cluster, _ = build_cluster(splits=[b"%05d" % 20])
        assert_rollback_restores_state(
            cluster, [MergeRegions("t", b"", b"%05d" % 20)]
        )
        assert len(cluster.tables["t"].regions) == 2

    def test_move_rolls_back(self):
        cluster, _ = build_cluster()
        region = cluster.tables["t"].regions[0]
        target = next(
            s for s in cluster.servers
            if s is not cluster.server_for(region)
        )
        assert_rollback_restores_state(
            cluster, [MoveRegion("t", region.start_key, target.name)]
        )

    def test_drain_rolls_back_and_regions_come_home(self):
        cluster, _ = build_cluster(splits=[b"%05d" % 20])
        hosting = next(s for s in cluster.servers if s.regions)
        assert_rollback_restores_state(cluster, [DrainServer(hosting.name)])
        assert not hosting.draining
        assert hosting.regions

    def test_rebalance_rolls_back(self):
        cluster, _ = build_cluster(
            splits=[b"%05d" % k for k in (10, 20, 30)]
        )
        cluster.add_servers(2)
        # rebalance inside a poisoned stage: its recorded moves replay
        # in reverse, so hosting returns to the skewed layout
        assert_rollback_restores_state(
            cluster, [Rebalance("round-robin")]
        )

    def test_enabling_replication_rolls_back_to_unmanaged(self):
        cluster, client = build_cluster(
            replication=ReplicationConfig(replica_count=2), rows=0
        )
        client.create_table("empty", families=(FAM,))
        assert_rollback_restores_state(cluster, [SetReplicas("empty", 2)])
        assert cluster.replication.groups_for("empty") == []

    def test_raising_replicas_rolls_back_to_old_target(self):
        cluster, client = build_cluster(
            servers=3,
            replication=ReplicationConfig(replica_count=2),
            rows=0,
        )
        client.create_table("r", families=(FAM,))
        cluster.replication.replicate_table("r")
        table = client.table("r")
        for i in range(20):
            table.put(Put(b"%05d" % i).add(FAM, b"q", b"x%05d" % i))
        assert_rollback_restores_state(cluster, [SetReplicas("r", 3)])
        assert cluster.replication.target_for("r") == 2


# ------------------------------------------------------------ rollouts
class TestRollout:
    def test_full_plan_commits_and_reaches_target(self):
        cluster, client = build_cluster(
            replication=ReplicationConfig(replica_count=2), rows=0
        )
        client.create_table("r", families=(FAM,))
        cluster.replication.replicate_table("r")
        table = client.table("r")
        for i in range(30):
            table.put(Put(b"%05d" % i).add(FAM, b"q", b"x%05d" % i))
        plan = ClusterPlan(
            servers=4, tables={"r": TablePlan(replicas=3)},
            balance="load-aware",
        )
        report = Orchestrator(cluster, plan=plan).run()
        assert report.status == "committed"
        assert report.committed_stages == len(report.stages)
        assert len([s for s in cluster.servers if not s.draining]) == 4
        assert cluster.replication.target_for("r") == 3
        for group in cluster.replication.groups_for("r"):
            assert len(group.live_followers()) == 2
        transient, fatal = verify_cluster(cluster)
        assert fatal == [] and transient == []

    def test_drain_step_degrades_to_recovery_then_drain(self):
        cluster, _ = build_cluster(splits=[b"%05d" % 20])
        victim = next(s for s in cluster.servers if s.regions)
        victim.crash()
        step = DrainServer(victim.name)
        step.fence(cluster)
        step.apply(cluster)
        assert step.recovered_first
        assert victim.draining
        # the crashed server's regions were failed over by recovery, so
        # the drain itself had nothing left to move
        assert step.moves == []
        transient, fatal = verify_cluster(cluster)
        assert fatal == []

    def test_committed_stages_stay_committed_after_later_failure(self):
        cluster, _ = build_cluster()
        orch = Orchestrator(cluster, stages=[
            ("1:grow", [AddServers(1)]),
            ("2:doomed", [SplitRegion("t", b"%05d" % 17), PoisonStep()]),
        ])
        report = orch.run()
        assert [s.status for s in report.stages] == [
            "committed", "rolled-back",
        ]
        # stage 1 (the scale-out) survives; stage 2's split unwound
        assert len(cluster.servers) == 3
        assert len(cluster.tables["t"].regions) == 1

    def test_report_json_shape(self):
        cluster, _ = build_cluster()
        report = Orchestrator(
            cluster, plan=ClusterPlan(servers=3, balance=None)
        ).run()
        payload = report.as_dict()
        assert payload["status"] == "committed"
        assert payload["committed_stages"] == payload["total_stages"] == 1
        assert payload["epoch_end"] > payload["epoch_start"]
        stage = payload["stages"][0]
        assert stage["steps"] == ["add-servers(+1)"]
        assert stage["epoch"] == payload["epoch_end"]

    def test_orchestrator_requires_exactly_one_source(self):
        cluster, _ = build_cluster()
        with pytest.raises(ValueError):
            Orchestrator(cluster)
        with pytest.raises(ValueError):
            Orchestrator(
                cluster, plan=ClusterPlan(servers=2), steps=[AddServers(1)]
            )
